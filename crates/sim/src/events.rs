//! A stable, time-ordered event queue.
//!
//! [`EventQueue`] wraps a binary heap keyed by [`SimTime`] with a
//! monotonically increasing sequence number as tie-breaker, so events
//! scheduled for the same instant pop in the order they were pushed. Stable
//! ordering is what makes whole-simulation runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by time, FIFO among equal timestamps.
///
/// # Example
///
/// ```
/// use qoserve_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Borrow of the earliest payload without removing it.
    pub fn peek(&self) -> Option<(&T, SimTime)> {
        self.heap.peek().map(|e| (&e.payload, e.time))
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (time, payload) in iter {
            self.push(time, payload);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for secs in [5u64, 1, 3, 2, 4] {
            q.push(SimTime::from_secs(secs), secs);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(10), "late");
        assert_eq!(
            q.pop_due(SimTime::from_secs(5)).map(|(_, v)| v),
            Some("early")
        );
        assert_eq!(q.pop_due(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 7);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.peek(), Some((&7, SimTime::from_secs(2))));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut q: EventQueue<&str> =
            vec![(SimTime::from_secs(2), "b"), (SimTime::from_secs(1), "a")]
                .into_iter()
                .collect();
        q.extend([(SimTime::from_secs(3), "c")]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }
}
