//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (trace sampling, arrival
//! processes, execution-time noise) draws from a [`SeedStream`], which
//! derives independent ChaCha8 substreams from a root seed and a string
//! label. Deriving by label rather than by call order means adding a new
//! consumer of randomness does not perturb the values seen by existing
//! consumers — runs stay comparable as the simulator evolves.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A labelled source of deterministic random substreams.
///
/// # Example
///
/// ```
/// use qoserve_sim::SeedStream;
/// use rand::Rng;
///
/// let stream = SeedStream::new(42);
/// let mut arrivals = stream.derive("arrivals");
/// let mut noise = stream.derive("noise");
/// let a: f64 = arrivals.gen();
/// let n: f64 = noise.gen();
/// // Re-deriving the same label replays the same stream.
/// let mut again = stream.derive("arrivals");
/// assert_eq!(a, again.gen::<f64>());
/// assert_ne!(a, n);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream family rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream { root: seed }
    }

    /// The root seed this family was created with.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// Derives an independent RNG for `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream; distinct
    /// labels yield streams that are independent for all practical purposes.
    pub fn derive(&self, label: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.root ^ fnv1a(label.as_bytes()))
    }

    /// Derives an independent RNG for a `(label, index)` pair, for per-entity
    /// streams such as "one stream per replica".
    pub fn derive_indexed(&self, label: &str, index: u64) -> ChaCha8Rng {
        let mut seed = self.root ^ fnv1a(label.as_bytes());
        seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Derives a child [`SeedStream`], for handing a whole subsystem its own
    /// family of labelled streams.
    pub fn child(&self, label: &str) -> SeedStream {
        SeedStream {
            root: self.root ^ fnv1a(label.as_bytes()).rotate_left(17),
        }
    }
}

/// 64-bit FNV-1a hash; tiny, stable, and good enough for seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Draws a sample from a log-normal distribution parameterised by its
/// *median* and the ratio `p90 / p50`, clamped to `[min, max]`.
///
/// This is the primitive used to synthesise prompt/decode token counts that
/// match the published per-dataset percentiles (Table 2 of the paper): a
/// log-normal with median `m` has `ln`-mean `ln m`, and its p90/p50 ratio
/// fixes the `ln`-std via `sigma = ln(ratio) / z90` with `z90 ≈ 1.2816`.
pub fn lognormal_from_percentiles<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    p90_over_p50: f64,
    min: f64,
    max: f64,
) -> f64 {
    debug_assert!(median > 0.0 && p90_over_p50 >= 1.0);
    const Z90: f64 = 1.281_551_565_544_9;
    let mu = median.ln();
    let sigma = p90_over_p50.ln() / Z90;
    let z: f64 = sample_standard_normal(rng);
    (mu + sigma * z).exp().clamp(min, max)
}

/// Samples a standard normal via Box–Muller; avoids pulling `rand_distr`
/// into the hot path for this one distribution.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Draws an exponential inter-arrival gap with the given rate (events per
/// second), returned in seconds.
///
/// # Panics
///
/// Panics (debug builds) if `rate_per_sec` is not strictly positive.
pub fn exponential_gap_secs<R: RngCore + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    debug_assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let u: f64 = rand::Rng::gen::<f64>(rng);
    // Guard against ln(0).
    let u = u.max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_replays_stream() {
        let s = SeedStream::new(7);
        let a: Vec<u32> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let _ = a;
        let mut r1 = s.derive("x");
        let mut r2 = s.derive("x");
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedStream::new(7);
        let mut r1 = s.derive("x");
        let mut r2 = s.derive("y");
        let same = (0..16).filter(|_| r1.next_u64() == r2.next_u64()).count();
        assert!(same < 2, "streams for distinct labels should diverge");
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = SeedStream::new(1).derive("x");
        let mut r2 = SeedStream::new(2).derive("x");
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let s = SeedStream::new(11);
        let mut r0 = s.derive_indexed("replica", 0);
        let mut r1 = s.derive_indexed("replica", 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    #[test]
    fn child_streams_are_independent_of_parent() {
        let s = SeedStream::new(11);
        let c = s.child("workload");
        let mut pr = s.derive("x");
        let mut cr = c.derive("x");
        assert_ne!(pr.next_u64(), cr.next_u64());
    }

    #[test]
    fn lognormal_hits_requested_percentiles() {
        let s = SeedStream::new(3);
        let mut rng = s.derive("ln");
        let mut samples: Vec<f64> = (0..40_000)
            .map(|_| lognormal_from_percentiles(&mut rng, 1000.0, 3.0, 1.0, 1e9))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[samples.len() / 2];
        let p90 = samples[samples.len() * 9 / 10];
        assert!((p50 / 1000.0 - 1.0).abs() < 0.05, "p50 was {p50}");
        assert!((p90 / 3000.0 - 1.0).abs() < 0.08, "p90 was {p90}");
    }

    #[test]
    fn lognormal_respects_clamp() {
        let s = SeedStream::new(5);
        let mut rng = s.derive("clamp");
        for _ in 0..1000 {
            let v = lognormal_from_percentiles(&mut rng, 100.0, 4.0, 50.0, 150.0);
            assert!((50.0..=150.0).contains(&v));
        }
    }

    #[test]
    fn exponential_gap_mean_matches_rate() {
        let s = SeedStream::new(9);
        let mut rng = s.derive("exp");
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exponential_gap_secs(&mut rng, 4.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean gap was {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let s = SeedStream::new(13);
        let mut rng = s.derive("norm");
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn streams_usable_with_rand_traits() {
        let s = SeedStream::new(1);
        let mut rng = s.derive("gen");
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
