//! The repo-specific rules and their per-crate scoping.
//!
//! All rules are *lexical*: they match patterns over the token stream of
//! [`crate::lexer`], with a light name-tracking heuristic for hash
//! containers. That keeps the linter dependency-free and fast, at the
//! cost of type blindness — a local `Vec` that shadows the name of a
//! `HashMap` field would be flagged too. In practice the heuristic is
//! precise on this codebase, and the waiver syntax exists for the rare
//! false positive.
//!
//! | rule                   | scope (non-test `src/` code)           |
//! |------------------------|----------------------------------------|
//! | `nondeterministic-time`| sim, sched, engine, workload, cluster, core, trace |
//! | `hash-iteration`       | sim, sched, engine, workload, cluster, core, trace |
//! | `float-ordering`       | every crate except the sanctioned helper `crates/sim/src/float.rs` |
//! | `panic-hygiene`        | every crate, excluding `src/bin/` drivers; ratcheted by `lint-baseline.toml` |
//! | `unstructured-output`  | library code only (`src/bin/` and `src/main.rs` exempt); ratcheted by `lint-baseline.toml` |
//! | `hot-path-alloc`       | hot-path fn bodies in determinism-crate library code; ratcheted by `lint-baseline.toml` |
//!
//! Test code never participates: files under a `tests/`, `benches/`,
//! `examples/`, or `fixtures/` path component are skipped entirely, and
//! `#[cfg(test)]` / `#[test]` regions inside library files are excised.

use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};
use crate::waiver::{collect_waivers, Waiver};

/// Rule name: wall-clock / entropy sources in simulation crates.
pub const RULE_TIME: &str = "nondeterministic-time";
/// Rule name: iteration over `HashMap` / `HashSet`.
pub const RULE_HASH: &str = "hash-iteration";
/// Rule name: NaN-unsafe float comparisons.
pub const RULE_FLOAT: &str = "float-ordering";
/// Rule name: panics in library code, above the ratcheted baseline.
pub const RULE_PANIC: &str = "panic-hygiene";
/// Rule name: `println!`-family output in library code, above the
/// ratcheted baseline.
pub const RULE_OUTPUT: &str = "unstructured-output";
/// Rule name: allocation churn inside simulation hot paths, above the
/// ratcheted baseline.
pub const RULE_ALLOC: &str = "hot-path-alloc";
/// Rule name: malformed waiver comment.
pub const RULE_WAIVER: &str = "bad-waiver";

/// Crates whose `src/` is bound by the determinism contract (the
/// simulation core; everything whose state feeds replayed results).
const DETERMINISM_CRATES: &[&str] = &[
    "sim", "sched", "engine", "workload", "cluster", "core", "trace",
];

/// Output macros that bypass structured reporting: library code must
/// return data (or use the trace layer) instead of writing to the
/// process streams; only `src/bin/` drivers and `src/main.rs` may print.
const OUTPUT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// The one file allowed to spell out raw float comparisons: the shared
/// `total_cmp` helper everything else is routed through.
const FLOAT_HELPER: &str = "crates/sim/src/float.rs";

/// Functions whose bodies are simulation hot paths: per-iteration and
/// per-event code where allocation churn dominates wall-clock time.
/// Matched lexically by name (`fn <name>`), like every other rule.
const HOT_FNS: &[&str] = &[
    "step",
    "on_iteration",
    "advance_replica",
    "run_faulty_inner",
    "pop",
    "pop_due",
];

/// `HashMap`/`HashSet` methods that observe iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// `nondeterministic-time` + `hash-iteration`.
    pub determinism: bool,
    /// `float-ordering`.
    pub float: bool,
    /// `panic-hygiene`.
    pub panic: bool,
    /// `unstructured-output`.
    pub output: bool,
    /// `hot-path-alloc`.
    pub alloc: bool,
}

impl FileScope {
    /// Nothing applies (test code, fixtures, non-crate files).
    pub const NONE: FileScope = FileScope {
        determinism: false,
        float: false,
        panic: false,
        output: false,
        alloc: false,
    };

    /// True when at least one rule family applies.
    pub fn any(&self) -> bool {
        self.determinism || self.float || self.panic || self.output || self.alloc
    }
}

/// Computes the rule scope of a workspace-relative path (must use `/`
/// separators; [`crate::walk`] normalizes).
pub fn scope_for(rel_path: &str) -> FileScope {
    let components: Vec<&str> = rel_path.split('/').collect();
    // Test, bench, example, and fixture code is exempt from everything.
    if components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples" | "fixtures"))
    {
        return FileScope::NONE;
    }
    // Only crate library/binary sources are in scope.
    let ["crates", crate_name, "src", rest @ ..] = components.as_slice() else {
        return FileScope::NONE;
    };
    if rest.is_empty() {
        return FileScope::NONE;
    }
    let is_bin_target = rest.first() == Some(&"bin") || rest == ["main.rs"];
    let determinism = DETERMINISM_CRATES.contains(crate_name);
    FileScope {
        determinism,
        float: rel_path != FLOAT_HELPER,
        panic: rest.first() != Some(&"bin"),
        output: !is_bin_target,
        alloc: determinism && rest.first() != Some(&"bin"),
    }
}

/// Result of analysing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations of the non-ratcheted rules (time, hash, float) plus any
    /// malformed waivers. Waived hits are already removed.
    pub diagnostics: Vec<Diagnostic>,
    /// Unwaived panic sites in non-test code: `(line, col, what)`. The
    /// caller compares `panic_sites.len()` against the baseline.
    pub panic_sites: Vec<(u32, u32, String)>,
    /// Unwaived `println!`-family sites in non-test library code:
    /// `(line, col, what)`, ratcheted like `panic_sites`.
    pub output_sites: Vec<(u32, u32, String)>,
    /// Unwaived allocation sites inside hot-path fn bodies (see
    /// [`HOT_FNS`]) in non-test code: `(line, col, what)`, ratcheted like
    /// `panic_sites`.
    pub alloc_sites: Vec<(u32, u32, String)>,
    /// All well-formed waivers found in the file (used or not).
    pub waivers: Vec<Waiver>,
}

/// Analyses one file under `scope`.
pub fn analyze(rel_path: &str, src: &str, scope: FileScope) -> FileAnalysis {
    let toks = lex(src);
    let (waivers, bad_waivers) = collect_waivers(&toks);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::LineComment)
        .collect();
    let test_lines = test_regions(&code);
    let in_test = |line: u32| {
        test_lines
            .iter()
            .any(|(lo, hi)| (*lo..=*hi).contains(&line))
    };

    let mut raw: Vec<Diagnostic> = Vec::new();
    if scope.determinism {
        check_time(rel_path, &code, &mut raw);
        check_hash_iteration(rel_path, &code, &mut raw);
    }
    if scope.float {
        check_float_ordering(rel_path, &code, &mut raw);
    }

    let mut analysis = FileAnalysis {
        waivers,
        ..Default::default()
    };

    for d in raw {
        if in_test(d.line) {
            continue;
        }
        if let Some(w) = analysis.waivers.iter().find(|w| w.covers(d.rule, d.line)) {
            w.used.set(true);
            continue;
        }
        analysis.diagnostics.push(d);
    }

    if scope.panic {
        for (line, col, what) in panic_sites(&code) {
            if in_test(line) {
                continue;
            }
            if let Some(w) = analysis.waivers.iter().find(|w| w.covers(RULE_PANIC, line)) {
                w.used.set(true);
                continue;
            }
            analysis.panic_sites.push((line, col, what));
        }
    }

    if scope.output {
        for (line, col, what) in output_sites(&code) {
            if in_test(line) {
                continue;
            }
            if let Some(w) = analysis
                .waivers
                .iter()
                .find(|w| w.covers(RULE_OUTPUT, line))
            {
                w.used.set(true);
                continue;
            }
            analysis.output_sites.push((line, col, what));
        }
    }

    if scope.alloc {
        let hot = hot_regions(&code);
        let in_hot = |line: u32| hot.iter().any(|(lo, hi)| (*lo..=*hi).contains(&line));
        for (line, col, what) in alloc_sites(&code) {
            if !in_hot(line) || in_test(line) {
                continue;
            }
            if let Some(w) = analysis.waivers.iter().find(|w| w.covers(RULE_ALLOC, line)) {
                w.used.set(true);
                continue;
            }
            analysis.alloc_sites.push((line, col, what));
        }
    }

    for b in bad_waivers {
        analysis.diagnostics.push(Diagnostic {
            path: rel_path.to_string(),
            line: b.line,
            col: b.col,
            rule: RULE_WAIVER,
            message: b.message,
        });
    }

    analysis
        .diagnostics
        .sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    analysis
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
fn test_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut attr_text: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            attr_text.push(code[j].text.as_str());
            j += 1;
        }
        let is_test_attr =
            attr_text == ["test"] || attr_text.windows(4).any(|w| w == ["cfg", "(", "test", ")"]);
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then find the item body braces.
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            let mut d = 1i32;
            k += 2;
            while k < code.len() && d > 0 {
                if code[k].is_punct('[') {
                    d += 1;
                } else if code[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Scan to the opening brace; `;` first means `mod tests;` (the
        // referenced file is exempt by path anyway).
        let mut body_open = None;
        while k < code.len() {
            if code[k].is_punct('{') {
                body_open = Some(k);
                break;
            }
            if code[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let mut d = 1i32;
        let mut end = open;
        let mut m = open + 1;
        while m < code.len() {
            if code[m].is_punct('{') {
                d += 1;
            } else if code[m].is_punct('}') {
                d -= 1;
                if d == 0 {
                    end = m;
                    break;
                }
            }
            m += 1;
        }
        let end_line = if d == 0 {
            code[end].line
        } else {
            u32::MAX // unterminated: treat the rest of the file as test
        };
        regions.push((code[attr_start].line, end_line));
        i = m + 1;
    }
    regions
}

fn diag(path: &str, t: &Tok, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// `Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`.
fn check_time(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant"
                if i + 3 < code.len()
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')
                    && code[i + 3].is_ident("now") =>
            {
                out.push(diag(
                    path,
                    t,
                    RULE_TIME,
                    "`Instant::now` breaks replay determinism; use `SimTime` from the event loop"
                        .to_string(),
                ));
            }
            "SystemTime" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`SystemTime` breaks replay determinism; thread simulated time through instead"
                    .to_string(),
            )),
            "thread_rng" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`thread_rng` is nondeterministic; derive a stream from `SeedStream`".to_string(),
            )),
            "from_entropy" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`from_entropy` seeds from the OS; derive a stream from `SeedStream`".to_string(),
            )),
            _ => {}
        }
    }
}

/// Names bound to `HashMap` / `HashSet` in this file (fields, lets,
/// params). Purely lexical; see module docs for the shadowing caveat.
fn hash_names(code: &[&Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name = HashMap::new()` / `= HashSet::with_capacity(..)`.
        if i >= 2 && code[i - 1].is_punct('=') && code[i - 2].kind == TokKind::Ident {
            names.insert(code[i - 2].text.clone());
            continue;
        }
        // `name: [&][mut] [path::]HashMap<..>` — walk back over the path.
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j >= 2
            && code[j - 1].is_punct(':')
            && !code[j - 2].is_punct(':')
            && code[j - 2].kind == TokKind::Ident
        {
            names.insert(code[j - 2].text.clone());
        }
    }
    names
}

/// Iteration over tracked hash containers: `x.iter()`, `x.values()`,
/// `for k in &x`, `x.drain()`, …
fn check_hash_iteration(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    let names = hash_names(code);
    if names.is_empty() {
        return;
    }
    // Method-call form.
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && i + 3 < code.len()
            && code[i + 1].is_punct('.')
            && code[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && code[i + 3].is_punct('(')
        {
            out.push(diag(
                path,
                t,
                RULE_HASH,
                format!(
                    "iteration over hash container `{}` (`.{}()`) is order-nondeterministic; \
                     use `BTreeMap`/`BTreeSet` or a `Vec`",
                    t.text,
                    code[i + 2].text
                ),
            ));
        }
    }
    // Bare `for .. in [&[mut]] x` form.
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0; bail at `{` (e.g. `impl T for U {`).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_at = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                in_at = Some(j);
                break;
            } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else {
            i = j.max(i + 1);
            continue;
        };
        // Expression tokens up to the loop body `{`.
        let mut k = in_at + 1;
        let mut depth = 0i32;
        while k < code.len() {
            let t = code[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            } else if t.kind == TokKind::Ident
                && names.contains(&t.text)
                && !(k + 1 < code.len() && code[k + 1].is_punct('.'))
            {
                out.push(diag(
                    path,
                    t,
                    RULE_HASH,
                    format!(
                        "`for .. in` over hash container `{}` is order-nondeterministic; \
                         use `BTreeMap`/`BTreeSet` or a `Vec`",
                        t.text
                    ),
                ));
            }
            k += 1;
        }
        i = k + 1;
    }
}

/// Index of the `)` matching `code[open]` (which must be `(`).
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (idx, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// `partial_cmp(..).unwrap()/expect(..)` and comparator closures built on
/// `partial_cmp` passed to the sort/min/max family.
fn check_float_ordering(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    let mut covered: Vec<(usize, usize)> = Vec::new();
    const SORT_FAMILY: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && SORT_FAMILY.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].is_punct('(')
        {
            if let Some(close) = matching_paren(code, i + 1) {
                if code[i + 2..close].iter().any(|a| a.is_ident("partial_cmp")) {
                    out.push(diag(
                        path,
                        t,
                        RULE_FLOAT,
                        format!(
                            "`{}` comparator built on `partial_cmp` is not a total order under \
                             NaN; use `f64::total_cmp` (see `qoserve_sim::float`)",
                            t.text
                        ),
                    ));
                    covered.push((i + 2, close));
                }
            }
        }
    }
    for i in 0..code.len() {
        if covered.iter().any(|(lo, hi)| (*lo..*hi).contains(&i)) {
            continue;
        }
        let t = code[i];
        if !t.is_ident("partial_cmp") || i + 1 >= code.len() || !code[i + 1].is_punct('(') {
            continue;
        }
        let Some(close) = matching_paren(code, i + 1) else {
            continue;
        };
        if close + 2 < code.len()
            && code[close + 1].is_punct('.')
            && (code[close + 2].is_ident("unwrap") || code[close + 2].is_ident("expect"))
        {
            out.push(diag(
                path,
                t,
                RULE_FLOAT,
                "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` \
                 (see `qoserve_sim::float`)"
                    .to_string(),
            ));
        }
    }
}

/// Unfiltered panic sites: `.unwrap(`, `.expect(`, `panic!`, `todo!`.
fn panic_sites(code: &[&Tok]) -> Vec<(u32, u32, String)> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1
                    && code[i - 1].is_punct('.')
                    && i + 1 < code.len()
                    && code[i + 1].is_punct('(') =>
            {
                sites.push((t.line, t.col, format!(".{}()", t.text)));
            }
            "panic" | "todo" if i + 1 < code.len() && code[i + 1].is_punct('!') => {
                sites.push((t.line, t.col, format!("{}!", t.text)));
            }
            _ => {}
        }
    }
    sites
}

/// Unfiltered output-macro sites: `println!`, `eprintln!`, `print!`,
/// `eprint!`, `dbg!`. Purely lexical, so `writeln!` and methods named
/// `println` never match (the `!` check requires a macro invocation).
fn output_sites(code: &[&Tok]) -> Vec<(u32, u32, String)> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && OUTPUT_MACROS.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].is_punct('!')
        {
            sites.push((t.line, t.col, format!("{}!", t.text)));
        }
    }
    sites
}

/// Line ranges covered by the bodies of hot-path functions (any `fn`
/// named in [`HOT_FNS`]), including nested closures and items.
fn hot_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if !(code[i].is_ident("fn")
            && code[i + 1].kind == TokKind::Ident
            && HOT_FNS.contains(&code[i + 1].text.as_str()))
        {
            i += 1;
            continue;
        }
        // Scan the signature for the body `{` at bracket depth 0; a `;`
        // first means a bodyless trait-method declaration.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 2);
            continue;
        };
        let mut d = 1i32;
        let mut m = open + 1;
        let mut end_line = u32::MAX; // unterminated: rest of file is hot
        while m < code.len() {
            if code[m].is_punct('{') {
                d += 1;
            } else if code[m].is_punct('}') {
                d -= 1;
                if d == 0 {
                    end_line = code[m].line;
                    break;
                }
            }
            m += 1;
        }
        regions.push((code[open].line, end_line));
        i = m + 1;
    }
    regions
}

/// Unfiltered allocation sites: `Box::new(`, `.to_string(`, `.clone(`,
/// `.to_owned(`, `.to_vec(`. `Clone` derives and pass-through calls like
/// `clone_from` never match (the method name must be exact).
fn alloc_sites(code: &[&Tok]) -> Vec<(u32, u32, String)> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Box"
                if i + 4 < code.len()
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')
                    && code[i + 3].is_ident("new")
                    && code[i + 4].is_punct('(') =>
            {
                sites.push((t.line, t.col, "Box::new(..)".to_string()));
            }
            "to_string" | "clone" | "to_owned" | "to_vec"
                if i >= 1
                    && code[i - 1].is_punct('.')
                    && i + 1 < code.len()
                    && code[i + 1].is_punct('(') =>
            {
                sites.push((t.line, t.col, format!(".{}()", t.text)));
            }
            _ => {}
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: FileScope = FileScope {
        determinism: true,
        float: true,
        panic: true,
        output: true,
        alloc: true,
    };

    fn rules_of(src: &str) -> Vec<&'static str> {
        analyze("crates/sim/src/x.rs", src, ALL)
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn scoping_table() {
        let s = scope_for("crates/sched/src/queue.rs");
        assert!(s.determinism && s.float && s.panic && s.output && s.alloc);
        let s = scope_for("crates/metrics/src/histogram.rs");
        assert!(!s.determinism && s.float && s.panic && s.output);
        assert!(!s.alloc, "hot-path-alloc only binds determinism crates");
        let s = scope_for("crates/trace/src/tracer.rs");
        assert!(s.determinism, "the trace layer feeds replayed results");
        let s = scope_for("crates/sim/src/float.rs");
        assert!(s.determinism && !s.float && s.panic, "sanctioned helper");
        let s = scope_for("crates/bench/src/bin/fig9.rs");
        assert!(
            !s.determinism && s.float && !s.panic && !s.output && !s.alloc,
            "drivers may panic and print"
        );
        let s = scope_for("crates/engine/src/bin/probe.rs");
        assert!(
            !s.alloc,
            "bin targets are exempt even in determinism crates"
        );
        let s = scope_for("crates/lint/src/main.rs");
        assert!(s.panic && !s.output, "main.rs is a bin target for output");
        assert!(!scope_for("crates/sched/tests/props.rs").any());
        assert!(!scope_for("tests/tests/invariants.rs").any());
        assert!(!scope_for("examples/quickstart.rs").any());
        assert!(!scope_for("crates/lint/tests/fixtures/ws/crates/sim/src/bad.rs").any());
    }

    #[test]
    fn time_rule_fires() {
        assert_eq!(rules_of("let t = Instant::now();"), vec![RULE_TIME]);
        assert_eq!(rules_of("let t = SystemTime::now();"), vec![RULE_TIME]);
        assert_eq!(rules_of("let mut r = rand::thread_rng();"), vec![RULE_TIME]);
        assert_eq!(
            rules_of("let r = ChaCha8Rng::from_entropy();"),
            vec![RULE_TIME]
        );
        // `Instant` in other positions (e.g. a type name) is fine.
        assert!(rules_of("fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn hash_iteration_method_forms() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S { fn f(&self) { \
                   for v in self.m.values() { } } }";
        let a = analyze("crates/sched/src/x.rs", src, ALL);
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].rule, RULE_HASH);
        assert!(a.diagnostics[0].message.contains(".values()"));

        for m in ["iter", "keys", "drain", "into_values", "iter_mut"] {
            let src = format!("let mut m = HashMap::new();\nlet x: Vec<_> = m.{m}().collect();");
            assert_eq!(rules_of(&src), vec![RULE_HASH], "method {m}");
        }
    }

    #[test]
    fn hash_iteration_bare_for_forms() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nfor (k, v) in &m { }";
        assert_eq!(rules_of(src), vec![RULE_HASH]);
        let src = "struct S { seen: HashSet<u64> }\nfn f(s: S) { for x in s.seen { } }";
        // `s.seen` — the tracked ident is followed by nothing iterable-
        // looking but is the for target; caught via the bare-ident path.
        assert_eq!(rules_of(src), vec![RULE_HASH]);
    }

    #[test]
    fn hash_construction_and_lookup_are_legal() {
        let src = "let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   m.insert(1, 2);\nlet v = m.get(&1);\nlet n = m.len();\n\
                   m.entry(3).or_default();\nm.remove(&1);";
        assert!(rules_of(src).is_empty());
        // BTreeMap iteration is the sanctioned alternative.
        assert!(rules_of("let m = BTreeMap::new(); for x in m.values() { }").is_empty());
        // `impl Trait for Type` must not confuse the for-loop scan.
        assert!(rules_of("impl Iterator for Thing { }").is_empty());
    }

    #[test]
    fn float_rule_fires() {
        assert_eq!(
            rules_of("let o = a.partial_cmp(&b).unwrap();"),
            vec![RULE_FLOAT]
        );
        assert_eq!(
            rules_of("let o = a.partial_cmp(&b).expect(\"cmp\");"),
            vec![RULE_FLOAT]
        );
        // sort_by with a partial_cmp comparator: one diagnostic, at the
        // sort, even when the inner call also unwraps.
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap());"),
            vec![RULE_FLOAT]
        );
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));"),
            vec![RULE_FLOAT]
        );
        // total_cmp is always fine; bare partial_cmp without unwrap too.
        assert!(rules_of("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(rules_of("if a.partial_cmp(&b) == Some(Ordering::Less) { }").is_empty());
    }

    #[test]
    fn panic_sites_and_exclusions() {
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); todo!(); }",
            ALL,
        );
        assert_eq!(a.panic_sites.len(), 4);
        // Named lookalikes don't count.
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(f); assert!(x); debug_assert_eq!(a, b); }",
            ALL,
        );
        assert!(a.panic_sites.is_empty());
    }

    #[test]
    fn output_sites_and_exclusions() {
        let a = analyze(
            "crates/metrics/src/x.rs",
            "fn f() { println!(\"a\"); eprintln!(\"b\"); print!(\"c\"); eprint!(\"d\"); \
             let v = dbg!(1); }",
            ALL,
        );
        assert_eq!(a.output_sites.len(), 5);
        assert_eq!(a.output_sites[0].2, "println!");
        // Structured writes and lookalike idents don't count.
        let a = analyze(
            "crates/metrics/src/x.rs",
            "fn f(w: &mut String) { writeln!(w, \"x\"); write!(w, \"y\"); self.println(); }",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        // Test regions are excised, like every other rule.
        let a = analyze(
            "crates/metrics/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        // A waiver with a reason suppresses and is marked used.
        let a = analyze(
            "crates/bench/src/x.rs",
            "// qoserve-lint: allow(unstructured-output) -- console banner is the product\n\
             fn banner() { println!(\"hi\"); }\n",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        assert!(a.waivers[0].used.get());
    }

    #[test]
    fn hot_path_alloc_fires_only_inside_hot_fns() {
        let src = "impl Engine {\n\
                   fn label(&self) -> String { self.name.clone() }\n\
                   pub fn step(&mut self) -> bool {\n\
                   let b = Box::new(Job::default());\n\
                   let s = self.id.to_string();\n\
                   let js = self.jobs.clone();\n\
                   let o = buf.to_owned();\n\
                   let v = slice.to_vec();\n\
                   true\n\
                   }\n\
                   }\n";
        let a = analyze("crates/engine/src/x.rs", src, ALL);
        assert_eq!(a.alloc_sites.len(), 5, "{:?}", a.alloc_sites);
        assert_eq!(a.alloc_sites[0].2, "Box::new(..)");
        assert_eq!(a.alloc_sites[1].2, ".to_string()");
        // The same allocations outside a hot fn are legal.
        let a = analyze(
            "crates/engine/src/x.rs",
            "fn setup() { let b = Box::new(1); let s = x.to_string(); let c = y.clone(); }",
            ALL,
        );
        assert!(a.alloc_sites.is_empty());
        // Lookalikes don't count: clone_from, Clone bound, non-call clone.
        let a = analyze(
            "crates/engine/src/x.rs",
            "fn on_iteration<T: Clone>(&mut self) { a.clone_from(&b); let f = Self::clone; }",
            ALL,
        );
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
    }

    #[test]
    fn hot_path_alloc_covers_all_hot_fns_and_respects_waivers() {
        for name in ["step", "on_iteration", "advance_replica", "pop", "pop_due"] {
            let src = format!("fn {name}(&mut self) -> u32 {{ self.v.clone() }}");
            let a = analyze("crates/sim/src/x.rs", &src, ALL);
            assert_eq!(a.alloc_sites.len(), 1, "fn {name}");
        }
        // A bodyless trait declaration must not swallow the rest of the
        // file into a hot region.
        let src = "trait S { fn step(&mut self) -> bool; }\n\
                   fn setup() { let c = x.clone(); }\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
        // Waivers suppress and are marked used, like every other rule.
        let src = "fn step(&mut self) {\n\
                   // qoserve-lint: allow(hot-path-alloc) -- cold error path\n\
                   let msg = err.to_string();\n\
                   }\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty());
        assert!(a.waivers[0].used.get());
        // Test regions are excised.
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { \
                   fn step(x: &X) -> X { x.clone() } }\n}\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty());
    }

    #[test]
    fn test_regions_are_excised() {
        let src = "fn lib() { }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); \
                   let m = HashMap::new(); for v in m.values() { } }\n}\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a.panic_sites.is_empty());
        // A top-level #[test] fn (no cfg module) is excised too.
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib(y: Option<u32>) -> u32 { y.unwrap() }";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert_eq!(a.panic_sites.len(), 1);
        assert_eq!(a.panic_sites[0].0, 3, "only the library-code unwrap counts");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// Instant::now() in a comment\n\
                   /* thread_rng() in a block /* nested unwrap() */ */\n\
                   let s = \"Instant::now() partial_cmp unwrap()\";\n\
                   let r = r#\"for x in m.values()\"#;\n\
                   let c = '\"';\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty());
        assert!(a.panic_sites.is_empty());
    }

    #[test]
    fn waivers_suppress_and_mark_used() {
        let src = "// qoserve-lint: allow(nondeterministic-time) -- wall-clock overhead probe\n\
                   let t = Instant::now();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty());
        assert_eq!(a.waivers.len(), 1);
        assert!(a.waivers[0].used.get());
        // Trailing same-line waiver works too.
        let src = "let v = x.unwrap(); // qoserve-lint: allow(panic-hygiene) -- infallible here\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.panic_sites.is_empty());
        // A waiver for the wrong rule does not suppress.
        let src = "// qoserve-lint: allow(panic-hygiene) -- wrong rule\nlet t = Instant::now();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert_eq!(a.diagnostics.len(), 1);
        assert!(!a.waivers[0].used.get());
    }

    #[test]
    fn bad_waiver_is_reported() {
        let src = "// qoserve-lint: allow(panic-hygiene)\nlet v = x.unwrap();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.iter().any(|d| d.rule == RULE_WAIVER));
        // And the malformed waiver does NOT suppress the site.
        assert_eq!(a.panic_sites.len(), 1);
    }

    #[test]
    fn diagnostics_carry_exact_positions() {
        let a = analyze("crates/sim/src/x.rs", "\n  let t = Instant::now();", ALL);
        assert_eq!(a.diagnostics[0].line, 2);
        assert_eq!(a.diagnostics[0].col, 11);
        assert_eq!(
            a.diagnostics[0].to_string(),
            format!(
                "crates/sim/src/x.rs:2:11 nondeterministic-time {}",
                a.diagnostics[0].message
            )
        );
    }
}
