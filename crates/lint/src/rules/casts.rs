//! `lossy-cast`: truncating / sign-changing `as` casts.
//!
//! The simulation's time and token arithmetic is integer microseconds and
//! counts; an `as` cast silently truncates (`u128 as u64`), wraps
//! (`i64 as u64`), or saturates (`f64 as u64`) — all of which corrupt
//! simulated time without a panic to point at the site. The sanctioned
//! fix is the checked/saturating helpers in `qoserve_sim::nums` (sibling
//! to the `float` helper), which make the clamp/round policy explicit and
//! debug-assert on real information loss. The rule is ratcheted: existing
//! debt is frozen per file in `lint-baseline.toml` and may only go down.

use crate::lexer::{Tok, TokKind};

use super::Site;

/// Integer cast targets that can lose value or sign. `as f64`/`as f32`
/// are out of scope (precision loss there is the float rules' domain).
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Unfiltered `as <int>` cast sites, anchored at the `as` keyword.
pub(crate) fn cast_sites(code: &[&Tok]) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if !t.is_ident("as") {
            continue;
        }
        // `use x as y` aliases never target a primitive int, so matching
        // the target type alone is enough to exclude them.
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        if target.kind == TokKind::Ident && INT_TARGETS.contains(&target.text.as_str()) {
            sites.push((t.line, t.col, format!("`as {}`", target.text)));
        }
    }
    sites
}
