//! Table 5: ablation of QoServe's techniques.
//!
//! Starting from Sarathi-EDF, adds dynamic chunking (DC), then eager
//! relegation (+ER), then hybrid prioritization (+HP — the full system)
//! and reports (a) the optimal sustainable load and (b) violations at a
//! fixed 6 QPS overload. Expected shape: DC buys ~20 % capacity; ER cuts
//! overload violations drastically; HP's value concentrates at high load.

use qoserve::experiments::{run_run, scaled_window};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::SloReport;

fn main() {
    banner("table5", "Ablation: DC -> +ER -> +HP (Az-Code, Llama3-8B)");

    let configs: Vec<(String, SchedulerSpec)> = vec![
        ("Sarathi-EDF".into(), SchedulerSpec::sarathi_edf()),
        (
            "QoServe (DC)".into(),
            SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc()),
        ),
        (
            "QoServe (DC+ER)".into(),
            SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc_er()),
        ),
        (
            "QoServe (DC+ER+HP)".into(),
            SchedulerSpec::qoserve_with(QoServeConfig::ablation_full()),
        ),
    ];

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let dataset = Dataset::azure_code();
    let cluster = ClusterConfig::new(hw.clone());
    let options = GoodputOptions {
        window: scaled_window(2400),
        resolution: 0.1,
        max_qps: 12.0,
        ..Default::default()
    };

    // Overload probe at ~1.5x the full system's capacity (the paper's 6
    // QPS is ~1.6x its measured 3.65 QPS optimum; our simulator's absolute
    // capacity is higher, so the ratio is what transfers).
    eprintln!("measuring full-system capacity for the overload point...");
    let full_capacity = max_goodput(
        &dataset,
        &configs.last().expect("non-empty").1,
        &cluster,
        &options,
        &SeedStream::new(5),
    );
    let overload_qps = (full_capacity * 1.5).max(1.0);
    println!("full-system optimal load {full_capacity:.2} QPS -> overload probe at {overload_qps:.1} QPS");
    let overload = TraceBuilder::new(dataset.clone())
        .arrivals(ArrivalProcess::poisson(overload_qps))
        .duration(scaled_window(3600))
        .paper_tier_mix()
        .build(&SeedStream::new(55));
    let threshold = overload.long_prompt_threshold();

    let mut table = Table::new(vec![
        "config",
        "optimal load (QPS)",
        "gain vs prev",
        "% viol @ overload",
        "impr vs prev",
    ]);
    let mut prev_load: Option<f64> = None;
    let mut prev_viol: Option<f64> = None;
    let mut rows = Vec::new();
    for (label, spec) in &configs {
        let load = max_goodput(&dataset, spec, &cluster, &options, &SeedStream::new(5));
        let outcomes = run_run(&overload, spec, &hw, 55);
        let viol = SloReport::compute(&outcomes, threshold).violation_pct();
        rows.push(serde_json::json!({
            "config": label,
            "optimal_load_qps": load,
            "overload_qps": overload_qps,
            "overload_violation_pct": viol,
        }));
        table.row(vec![
            label.clone(),
            format!("{load:.2}"),
            prev_load.map_or("-".into(), |p| format!("{:+.0}%", (load / p - 1.0) * 100.0)),
            format!("{viol:.1}%"),
            prev_viol.map_or("-".into(), |p| {
                if p <= 0.0 {
                    "-".into()
                } else {
                    format!("{:.0}%", (1.0 - viol / p) * 100.0)
                }
            }),
        ]);
        prev_load = Some(load);
        prev_viol = Some(viol);
        eprintln!("  done: {label}");
    }
    print!("{table}");
    emit_results("table5", &rows);
    println!();
    println!("paper: EDF 2.75 QPS/100% -> DC 3.3/74% -> DC+ER 3.6/26% -> full 3.65/16%");
}
