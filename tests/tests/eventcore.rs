//! Property pins for the event core (`qoserve_sim::eventcore`).
//!
//! The calendar queue is only allowed to be *faster* than the naive
//! `BinaryHeap` event queue — never differently ordered. These tests
//! drive it with arbitrary insert/pop interleavings against a reference
//! model and check three properties:
//!
//! 1. Pops are globally nondecreasing in `(time_us, sub, seq)`.
//! 2. Same-`(time, sub)` ties pop in push order (FIFO stability).
//! 3. The pop sequence is identical to a `BinaryHeap` reference model.
//!
//! Plus the slab-arena lifetime pin: a generation-checked `JobRef` must
//! detect use-after-free instead of silently reading a recycled slot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use qoserve_sim::{CalendarQueue, JobSlab, SimTime};

/// One scripted action against both the queue and the model.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `time_us` on substream `sub`.
    Push { time_us: u64, sub: u64 },
    /// Pop once (a no-op on an empty queue).
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (time_strategy(), 0u64..4).prop_map(|(time_us, sub)| Op::Push { time_us, sub }),
        2 => Just(Op::Pop),
    ]
}

/// Times spanning all three internal regions of the calendar queue:
/// dense near zero (wheel), clustered ties, and far-future outliers
/// (radix-heap overflow, beyond the wheel's ~8.6 s span).
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..200_000,
        2 => (0u64..64).prop_map(|t| t * 1_000), // heavy same-time ties
        1 => 0u64..100_000_000_000,
    ]
}

/// Reference model: plain `BinaryHeap` over the inverted full key.
#[derive(Default)]
struct ModelQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64, u64)>>,
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, time_us: u64, sub: u64, payload: u64) {
        self.heap
            .push(Reverse((time_us, sub, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64, u64)> {
        self.heap
            .pop()
            .map(|Reverse((time_us, sub, _, payload))| (time_us, sub, payload))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_queue_matches_binary_heap_reference(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut queue: CalendarQueue<u64> = CalendarQueue::new();
        let mut model = ModelQueue::default();
        let mut payload = 0u64;

        for op in &ops {
            match *op {
                Op::Push { time_us, sub } => {
                    queue.push(SimTime::from_micros(time_us), sub, payload);
                    model.push(time_us, sub, payload);
                    payload += 1;
                }
                Op::Pop => {
                    let got = queue.pop().map(|(t, sub, p)| (t.as_micros(), sub, p));
                    let want = model.pop();
                    // Identical to the reference model, pop for pop. The
                    // payload equality doubles as the FIFO-stability pin:
                    // the model breaks (time, sub) ties by insertion
                    // order, so any tie reordering changes the payload.
                    prop_assert_eq!(got, want);
                }
            }
        }

        // Drain both to empty: the tail must stay identical and globally
        // nondecreasing in (time_us, sub, seq) — with no further pushes,
        // every pop key must be >= its predecessor.
        let mut prev: Option<(u64, u64)> = None;
        loop {
            let got = queue.pop().map(|(t, sub, p)| (t.as_micros(), sub, p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            let Some((t, sub, _)) = got else { break };
            if let Some((pt, psub)) = prev {
                prop_assert!(
                    (pt, psub) <= (t, sub),
                    "pops must be nondecreasing: ({pt}, {psub}) then ({t}, {sub})"
                );
            }
            prev = Some((t, sub));
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(queue.len(), 0);
    }

    #[test]
    fn same_time_ties_pop_in_push_order(
        time_us in time_strategy(),
        sub in 0u64..4,
        n in 1usize..64,
    ) {
        let mut queue: CalendarQueue<usize> = CalendarQueue::new();
        for i in 0..n {
            queue.push(SimTime::from_micros(time_us), sub, i);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| queue.pop().map(|(_, _, p)| p)).collect();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(drained, expected, "ties must preserve push order");
    }
}

#[test]
fn slab_generation_check_detects_use_after_free() {
    let mut slab: JobSlab<String> = JobSlab::new();
    let a = slab.insert("a".to_string());
    let b = slab.insert("b".to_string());
    assert_eq!(slab.get(a).map(String::as_str), Some("a"));

    // Free `a`, then reuse its slot: the stale ref must read as dead
    // even though the index is occupied again.
    assert_eq!(slab.remove(a), Some("a".to_string()));
    let c = slab.insert("c".to_string());
    assert_eq!(
        slab.get(c).map(String::as_str),
        Some("c"),
        "the freed slot is recycled"
    );
    assert_eq!(slab.get(a), None, "stale JobRef must not resolve");
    assert_eq!(
        slab.get_mut(a),
        None,
        "stale JobRef must not resolve mutably"
    );
    assert_eq!(slab.remove(a), None, "double-free must be rejected");
    assert_eq!(
        slab.get(b).map(String::as_str),
        Some("b"),
        "live refs survive"
    );
    assert_eq!(slab.len(), 2);
}
