//! Fixture: lossy integer casts — two unwaived sites (baseline allows
//! 0), one exempt float-target cast, one waived site.

pub fn truncate(t: u128, d: i64) -> u64 {
    (t as u64).wrapping_add(d as u64)
}

pub fn widen(x: u64) -> f64 {
    x as f64
}

pub fn waived(t: u128) -> u64 {
    // qoserve-lint: allow(lossy-cast) -- fixture: bounded by the caller's horizon check
    t as u64
}
