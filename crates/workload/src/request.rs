//! Request specifications.
//!
//! A [`RequestSpec`] is one row of a workload trace: arrival time, token
//! counts, and the QoS contract attached at submission. It is immutable —
//! runtime state (prefill progress, relegation, emitted tokens) lives in
//! the engine's request records, not here.

use qoserve_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::qos::{Priority, QosClass, Slo, TierId};

/// Globally unique request identity within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One request of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Trace-unique identity.
    pub id: RequestId,
    /// Submission time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Number of output tokens the request will generate. (The scheduler
    /// never reads this — decode length is unknown at serving time; only
    /// the engine's token generator and the metrics layer use it.)
    pub decode_tokens: u32,
    /// QoS contract: tier, SLO targets, and priority hint.
    pub slo: Slo,
    /// Application identity, used for the per-application decode-length
    /// history behind the non-interactive priority term (§3.4).
    pub app_id: u32,
}

impl RequestSpec {
    /// The QoS class of this request.
    pub fn class(&self) -> QosClass {
        self.slo.tier.class
    }

    /// The tier identity.
    pub fn tier(&self) -> TierId {
        self.slo.tier.id
    }

    /// The importance hint.
    pub fn priority(&self) -> Priority {
        self.slo.priority
    }

    /// Deadline for the first output token (Eq. 1; TTLT for
    /// non-interactive requests).
    pub fn first_token_deadline(&self) -> SimTime {
        self.class().first_token_deadline(self.arrival)
    }

    /// Deadline for the 1-based `n`-th output token (Eq. 2 / Eq. 3).
    pub fn token_deadline(&self, n: u32) -> SimTime {
        self.class().token_deadline(self.arrival, n)
    }

    /// Deadline for full completion.
    pub fn completion_deadline(&self) -> SimTime {
        self.class()
            .completion_deadline(self.arrival, self.decode_tokens)
    }

    /// Total tokens (prompt + decode) this request moves through the
    /// system; the quadratic-load argument of the paper's overload analysis
    /// keys off prompt length.
    pub fn total_tokens(&self) -> u32 {
        self.prompt_tokens + self.decode_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosTier;
    use qoserve_sim::SimDuration;

    fn spec(tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(1),
            arrival: SimTime::from_secs(10),
            prompt_tokens: 1_000,
            decode_tokens: 100,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    #[test]
    fn interactive_deadlines() {
        let r = spec(QosTier::paper_q1());
        assert_eq!(r.first_token_deadline(), SimTime::from_secs(16));
        assert_eq!(
            r.token_deadline(2),
            SimTime::from_secs(16) + SimDuration::from_millis(50)
        );
        assert_eq!(
            r.completion_deadline(),
            SimTime::from_secs(16) + SimDuration::from_millis(50) * 99
        );
    }

    #[test]
    fn non_interactive_deadlines() {
        let r = spec(QosTier::paper_q3());
        let d = SimTime::from_secs(1_810);
        assert_eq!(r.first_token_deadline(), d);
        assert_eq!(r.token_deadline(50), d);
        assert_eq!(r.completion_deadline(), d);
    }

    #[test]
    fn accessors() {
        let r = spec(QosTier::paper_q2());
        assert_eq!(r.tier(), TierId::Q2);
        assert_eq!(r.priority(), Priority::Important);
        assert_eq!(r.total_tokens(), 1_100);
        assert!(!r.class().is_interactive());
    }

    #[test]
    fn id_display() {
        assert_eq!(RequestId(42).to_string(), "r42");
    }

    #[test]
    fn serde_round_trip() {
        let r = spec(QosTier::paper_q1());
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RequestSpec>(&json).unwrap(), r);
    }
}
