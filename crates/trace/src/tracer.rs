//! The `Tracer` handle threaded through schedulers, engines, and the
//! recovery orchestrator.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use qoserve_sim::SimTime;

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::{RingSink, TraceSink, VecSink};

/// Shared capture state behind the tracer mutex.
struct TracerInner {
    sink: Box<dyn TraceSink>,
    /// Per-replica simulated "now" context, set by each engine at the top
    /// of `step` so decision events emitted deeper in the call stack are
    /// stamped without threading `now` through every signature.
    now: BTreeMap<u32, SimTime>,
    /// Per-replica sequence counters (program order within a replica).
    next_seq: BTreeMap<u32, u64>,
}

impl TracerInner {
    fn record_at(&mut self, at: SimTime, replica: u32, request: Option<u64>, event: TraceEvent) {
        let seq = self.next_seq.entry(replica).or_insert(0);
        let s = *seq;
        *seq += 1;
        self.sink.record(TraceRecord {
            time_us: at.as_micros(),
            replica,
            seq: s,
            request,
            event,
        });
    }
}

/// A cheap, cloneable handle for emitting [`TraceEvent`]s.
///
/// The disabled handle (the default) holds no shared state at all: every
/// emit is a single `None` check. An enabled handle shares one sink
/// across all clones; [`for_replica`](Tracer::for_replica) re-stamps a
/// clone with the replica id its events belong to. Handles are `Send`,
/// so per-replica clones move into the cluster's replica threads.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Mutex<TracerInner>>>,
    replica: u32,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.shared.is_some())
            .field("replica", &self.replica)
            .finish()
    }
}

impl Tracer {
    /// The zero-overhead disabled tracer.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer capturing into `sink`. A sink reporting
    /// `enabled() == false` (e.g. [`NullSink`](crate::NullSink)) yields
    /// the fully-disabled tracer, so the hot path never locks for it.
    pub fn new(sink: Box<dyn TraceSink>) -> Tracer {
        if !sink.enabled() {
            return Tracer::disabled();
        }
        Tracer {
            shared: Some(Arc::new(Mutex::new(TracerInner {
                sink,
                now: BTreeMap::new(),
                next_seq: BTreeMap::new(),
            }))),
            replica: 0,
        }
    }

    /// Convenience: a tracer over a bounded [`RingSink`] retaining
    /// `per_replica` records per replica.
    pub fn ring(per_replica: usize) -> Tracer {
        Tracer::new(Box::new(RingSink::new(per_replica)))
    }

    /// Convenience: a tracer over an unbounded [`VecSink`].
    pub fn unbounded() -> Tracer {
        Tracer::new(Box::new(VecSink::new()))
    }

    /// [`Tracer::unbounded`] pre-sized for roughly `records` captured
    /// events (callers usually derive this from the trace's request
    /// count), so large captures never regrow the sink mid-run.
    pub fn unbounded_with_capacity(records: usize) -> Tracer {
        Tracer::new(Box::new(VecSink::with_capacity(records)))
    }

    /// Whether events are captured at all.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A clone of this handle whose events are stamped with `replica`.
    pub fn for_replica(&self, replica: u32) -> Tracer {
        Tracer {
            shared: self.shared.clone(),
            replica,
        }
    }

    /// The replica id this handle stamps.
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Updates this replica's simulated-now context; subsequent
    /// [`emit`](Tracer::emit) calls for the replica stamp this time.
    pub fn set_now(&self, now: SimTime) {
        let Some(shared) = &self.shared else { return };
        // qoserve-lint: allow(lock-discipline) -- a disabled tracer (the default in timed runs) returns above and never locks; when tracing is on, contention is the cost the user opted into
        let Ok(mut inner) = shared.lock() else { return };
        inner.now.insert(self.replica, now);
    }

    /// Emits `event` stamped with the replica's current `now` context
    /// (`SimTime::ZERO` before the first `set_now`).
    pub fn emit(&self, request: Option<u64>, event: TraceEvent) {
        let Some(shared) = &self.shared else { return };
        // qoserve-lint: allow(lock-discipline) -- a disabled tracer (the default in timed runs) returns above and never locks; when tracing is on, contention is the cost the user opted into
        let Ok(mut inner) = shared.lock() else { return };
        let at = inner
            .now
            .get(&self.replica)
            .copied()
            .unwrap_or(SimTime::ZERO);
        inner.record_at(at, self.replica, request, event);
    }

    /// Emits `event` stamped with an explicit time (orchestrator events
    /// whose time is not the replica's step clock).
    pub fn emit_at(&self, at: SimTime, request: Option<u64>, event: TraceEvent) {
        let Some(shared) = &self.shared else { return };
        // qoserve-lint: allow(lock-discipline) -- a disabled tracer (the default in timed runs) returns above and never locks; when tracing is on, contention is the cost the user opted into
        let Ok(mut inner) = shared.lock() else { return };
        inner.record_at(at, self.replica, request, event);
    }

    /// All retained records in canonical order (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let Ok(inner) = shared.lock() else {
            return Vec::new();
        };
        inner.sink.snapshot()
    }

    /// Records evicted by the sink's capacity limit.
    pub fn dropped(&self) -> u64 {
        let Some(shared) = &self.shared else { return 0 };
        // qoserve-lint: allow(lock-discipline) -- cold query accessor, never on the step path; the name-graph edge is `TraceSink::dropped` (a lock-free counter read in the stats tee), not this method
        let Ok(inner) = shared.lock() else { return 0 };
        inner.sink.dropped()
    }

    /// Evicted-record counts keyed by replica (empty when disabled, or
    /// when the sink keeps no per-replica accounting).
    pub fn dropped_by_replica(&self) -> BTreeMap<u32, u64> {
        let Some(shared) = &self.shared else {
            return BTreeMap::new();
        };
        let Ok(inner) = shared.lock() else {
            return BTreeMap::new();
        };
        inner.sink.dropped_by_replica()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn tracer_is_send_for_replica_threads() {
        assert_send::<Tracer>();
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.set_now(SimTime::from_secs(1));
        t.emit(Some(1), TraceEvent::FirstToken);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
        // A NullSink maps to the disabled tracer too.
        assert!(!Tracer::new(Box::new(crate::NullSink)).enabled());
    }

    #[test]
    fn emit_stamps_the_replica_now_context() {
        let t = Tracer::unbounded();
        let r0 = t.for_replica(0);
        let r1 = t.for_replica(1);
        r0.set_now(SimTime::from_micros(100));
        r1.set_now(SimTime::from_micros(7));
        r0.emit(Some(5), TraceEvent::FirstToken);
        r1.emit(None, TraceEvent::FirstToken);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].time_us, snap[0].replica), (7, 1));
        assert_eq!((snap[1].time_us, snap[1].replica), (100, 0));
        assert_eq!(snap[1].request, Some(5));
    }

    #[test]
    fn sequence_numbers_are_per_replica_program_order() {
        let t = Tracer::unbounded();
        let r0 = t.for_replica(0);
        let r1 = t.for_replica(1);
        for _ in 0..3 {
            r0.emit(None, TraceEvent::FirstToken);
            r1.emit(None, TraceEvent::FirstToken);
        }
        let snap = t.snapshot();
        for replica in [0, 1] {
            let seqs: Vec<u64> = snap
                .iter()
                .filter(|r| r.replica == replica)
                .map(|r| r.seq)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2], "replica {replica}");
        }
    }

    #[test]
    fn emit_at_overrides_the_now_context() {
        let t = Tracer::unbounded();
        t.set_now(SimTime::from_micros(50));
        t.emit_at(SimTime::from_micros(9), None, TraceEvent::FirstToken);
        assert_eq!(t.snapshot()[0].time_us, 9);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Tracer::ring(8);
        let clone = t.clone();
        clone.emit(None, TraceEvent::FirstToken);
        assert_eq!(t.snapshot().len(), 1);
    }
}
