//! Figures 10 and 11: latency and deadline violations under load.
//!
//! One sweep powers both figures: four shared-cluster schemes over the
//! Azure-Code three-tier workload as QPS rises past capacity.
//!
//! * Fig. 10: p50/p95 of each tier's judged latency (TTFT for Q1, TTLT
//!   for Q2/Q3).
//! * Fig. 11: violations overall, split by request length, and split by
//!   tier.

use qoserve::experiments::{load_sweep, scaled_window, shared_cluster_schemes};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results, p50_p95, sweep_row, tier_violation_cells};

fn main() {
    banner(
        "fig10_11",
        "Latency and SLO violations under load (Az-Code, Llama3-8B)",
    );

    let qps_list = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0];
    let points = load_sweep(
        &Dataset::azure_code(),
        &HardwareConfig::llama3_8b_a100_tp1(),
        &shared_cluster_schemes(),
        &qps_list,
        scaled_window(3600),
        &TierMix::paper_equal(),
        1011,
    );

    println!("\n--- Figure 10: per-tier latency p50/p95 (seconds; Q1=TTFT, Q2/Q3=TTLT) ---");
    let mut fig10 = Table::new(vec!["qps", "scheme", "Q1 (6s)", "Q2 (600s)", "Q3 (1800s)"]);
    for p in &points {
        fig10.row(vec![
            format!("{:.1}", p.qps),
            p.scheme.clone(),
            p50_p95(&p.report.tier_summary(TierId::Q1)),
            p50_p95(&p.report.tier_summary(TierId::Q2)),
            p50_p95(&p.report.tier_summary(TierId::Q3)),
        ]);
    }
    print!("{fig10}");

    println!("\n--- Figure 11: deadline violations ---");
    let mut fig11 = Table::new(vec![
        "qps", "scheme", "overall", "short", "long", "Q1", "Q2", "Q3",
    ]);
    for p in &points {
        let mut row = vec![
            format!("{:.1}", p.qps),
            p.scheme.clone(),
            format!("{:.1}%", p.report.violation_pct()),
            format!("{:.1}%", p.report.short_violation_pct()),
            format!("{:.1}%", p.report.long_violation_pct()),
        ];
        row.extend(tier_violation_cells(&p.report));
        fig11.row(row);
    }
    print!("{fig11}");

    // Headline: the largest load each scheme serves with zero violations.
    println!("\n--- Max load with < 1% violations per scheme ---");
    for scheme in shared_cluster_schemes() {
        let label = scheme.label();
        let max_clean = points
            .iter()
            .filter(|p| p.scheme == label && p.report.violation_pct() < 1.0)
            .map(|p| p.qps)
            .fold(0.0, f64::max);
        println!("  {label:>14}: {max_clean:.1} QPS");
    }
    println!("\npaper: QoServe handles up to 40% higher load than the best baseline while meeting tail SLOs");

    let rows: Vec<serde_json::Value> = points.iter().map(sweep_row).collect();
    emit_results("fig10_11", &rows);
}
