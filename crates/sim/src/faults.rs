//! Deterministic fault schedules.
//!
//! Fault injection follows the same contract as every other stochastic
//! component of the simulator: all randomness derives from a
//! [`SeedStream`] by label, so a `(seed, config)` pair always yields the
//! same fault timeline, independent of execution order or thread count.
//! The schedule is computed **a priori** over a horizon — faults are data,
//! not side effects — which lets the cluster layer answer "which replicas
//! are up at time t?" without simulating anything.
//!
//! The fault taxonomy (see DESIGN.md, "Fault model"):
//!
//! * **Crash** — the replica halts; in-flight and queued requests are lost
//!   (their KV state with them) and must be re-dispatched. With a
//!   configured downtime the replica restarts *empty* after it.
//! * **Straggler window** — iteration latency is inflated by a factor for
//!   a bounded interval (interference, thermal throttling).
//! * **Predictor-drift window** — a milder sustained inflation that the
//!   scheduler's latency predictor does not see, modelling calibration
//!   drift between the predictor and the hardware.

use serde::{Deserialize, Serialize};

use crate::nums;
use crate::rng::{exponential_gap_secs, SeedStream};
use crate::time::{SimDuration, SimTime};

/// Safety cap on generated events per replica per fault class, so a
/// pathological rate cannot allocate unbounded schedules.
const MAX_EVENTS_PER_CLASS: usize = 4_096;

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Replica halt. `restart_after` is the downtime before the replica
    /// comes back (empty); `None` means it never returns.
    Crash {
        /// Downtime before restart, if any.
        restart_after: Option<SimDuration>,
    },
    /// Transient slowdown: iteration latency is multiplied by `factor`
    /// while the window is open.
    Straggler {
        /// Window length.
        duration: SimDuration,
        /// Latency multiplier (> 1).
        factor: f64,
    },
    /// Predictor drift: execution latency is biased by `bias` while the
    /// scheduler's predictor keeps using its clean calibration.
    PredictorDrift {
        /// Window length.
        duration: SimDuration,
        /// Latency multiplier (> 1) hidden from the predictor.
        bias: f64,
    },
}

impl FaultKind {
    /// Stable ordering rank used to make event sorting total.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::Crash { .. } => 0,
            FaultKind::Straggler { .. } => 1,
            FaultKind::PredictorDrift { .. } => 2,
        }
    }
}

/// One scheduled fault on one replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// The replica it hits.
    pub replica: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates and shapes of the injected faults. All rates are per replica and
/// per simulated hour; a rate of zero disables that fault class, and
/// [`FaultConfig::none`] disables everything (the resulting schedule is
/// empty, and fault-aware runs are bit-identical to fault-free ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Crashes per replica-hour.
    pub crash_rate_per_hour: f64,
    /// Downtime before a crashed replica restarts; `None` = permanent.
    pub restart_downtime: Option<SimDuration>,
    /// Upper bound on crashes scheduled per replica.
    pub max_crashes_per_replica: u32,
    /// Straggler windows per replica-hour.
    pub straggler_rate_per_hour: f64,
    /// Length of each straggler window.
    pub straggler_duration: SimDuration,
    /// Iteration-latency multiplier inside a straggler window.
    pub straggler_factor: f64,
    /// Predictor-drift windows per replica-hour.
    pub drift_rate_per_hour: f64,
    /// Length of each drift window.
    pub drift_duration: SimDuration,
    /// Latency multiplier inside a drift window.
    pub drift_bias: f64,
}

impl FaultConfig {
    /// No faults at all: every rate is zero.
    pub fn none() -> Self {
        FaultConfig {
            crash_rate_per_hour: 0.0,
            restart_downtime: None,
            max_crashes_per_replica: 0,
            straggler_rate_per_hour: 0.0,
            straggler_duration: SimDuration::ZERO,
            straggler_factor: 1.0,
            drift_rate_per_hour: 0.0,
            drift_duration: SimDuration::ZERO,
            drift_bias: 1.0,
        }
    }

    /// A moderate mixed-fault profile used as the unit load of the
    /// `fault_sweep` experiment: crashes with restart, occasional
    /// stragglers, and mild predictor drift.
    pub fn moderate() -> Self {
        FaultConfig {
            crash_rate_per_hour: 3.0,
            restart_downtime: Some(SimDuration::from_secs(30)),
            max_crashes_per_replica: 64,
            straggler_rate_per_hour: 12.0,
            straggler_duration: SimDuration::from_secs(10),
            straggler_factor: 1.8,
            drift_rate_per_hour: 6.0,
            drift_duration: SimDuration::from_secs(20),
            drift_bias: 1.15,
        }
    }

    /// True when no fault class has a positive rate.
    pub fn is_none(&self) -> bool {
        self.crash_rate_per_hour <= 0.0
            && self.straggler_rate_per_hour <= 0.0
            && self.drift_rate_per_hour <= 0.0
    }

    /// Scales every fault *rate* by `intensity` (shapes — durations,
    /// factors, downtime — are untouched). Intensity 0 disables faults.
    pub fn scaled(&self, intensity: f64) -> Self {
        let intensity = intensity.max(0.0);
        FaultConfig {
            crash_rate_per_hour: self.crash_rate_per_hour * intensity,
            straggler_rate_per_hour: self.straggler_rate_per_hour * intensity,
            drift_rate_per_hour: self.drift_rate_per_hour * intensity,
            ..self.clone()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// One crash occurrence on a replica, as seen by the recovery layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// When the replica halts.
    pub at: SimTime,
    /// When it comes back (empty), if ever.
    pub restart_at: Option<SimTime>,
}

/// A latency-inflation interval on one replica (straggler or drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Iteration-latency multiplier while open.
    pub factor: f64,
    /// True for predictor-drift windows, false for stragglers.
    pub drift: bool,
}

impl SlowWindow {
    /// Whether the window is open at `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// The fault timeline of a single replica *generation*, consumed by the
/// engine: at most one upcoming crash (the engine halts there; the
/// recovery layer owns restarts) plus every slowdown window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaFaultProfile {
    /// The next crash, if any; the engine stops dead at this instant.
    pub crash_at: Option<SimTime>,
    /// Latency-inflation windows (the engine applies whichever contain
    /// the iteration start).
    pub windows: Vec<SlowWindow>,
}

impl ReplicaFaultProfile {
    /// A profile with no faults.
    pub fn healthy() -> Self {
        ReplicaFaultProfile::default()
    }

    /// Combined latency multiplier at `t` (product of all open windows;
    /// 1.0 when none are).
    pub fn slowdown_at(&self, t: SimTime) -> f64 {
        let mut factor = 1.0;
        for w in &self.windows {
            if w.contains(t) {
                factor *= w.factor;
            }
        }
        factor
    }
}

/// A fully materialised, deterministic fault timeline for a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// All events, sorted by `(at, replica, kind)`.
    events: Vec<FaultEvent>,
    /// Number of replicas the schedule was generated for.
    replicas: u32,
}

impl FaultSchedule {
    /// An empty schedule (no faults ever).
    pub fn empty(replicas: u32) -> Self {
        FaultSchedule {
            events: Vec::new(),
            replicas,
        }
    }

    /// Generates the schedule for `replicas` replicas over `[0, horizon)`.
    ///
    /// Each `(fault class, replica)` pair draws from its own
    /// [`SeedStream::derive_indexed`] stream, so adding replicas or fault
    /// classes never perturbs the others, and the same `(seeds, config,
    /// replicas, horizon)` always produces the identical timeline.
    pub fn generate(
        config: &FaultConfig,
        replicas: u32,
        horizon: SimTime,
        seeds: &SeedStream,
    ) -> Self {
        let mut events: Vec<FaultEvent> = Vec::new();
        if config.is_none() {
            return FaultSchedule::empty(replicas);
        }
        let horizon_secs = horizon.as_secs_f64();
        for replica in 0..replicas {
            generate_crashes(config, replica, horizon_secs, seeds, &mut events);
            generate_windows(
                "fault-straggler",
                config.straggler_rate_per_hour,
                config.straggler_duration,
                config.straggler_factor,
                false,
                replica,
                horizon_secs,
                seeds,
                &mut events,
            );
            generate_windows(
                "fault-drift",
                config.drift_rate_per_hour,
                config.drift_duration,
                config.drift_bias,
                true,
                replica,
                horizon_secs,
                seeds,
                &mut events,
            );
        }
        events.sort_by_key(|e| (e.at, e.replica, e.kind.rank()));
        FaultSchedule { events, replicas }
    }

    /// All scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of replicas the schedule covers.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The crash timeline of one replica, in time order.
    pub fn crashes_for(&self, replica: u32) -> Vec<CrashEvent> {
        self.events
            .iter()
            .filter(|e| e.replica == replica)
            .filter_map(|e| match e.kind {
                FaultKind::Crash { restart_after } => Some(CrashEvent {
                    at: e.at,
                    restart_at: restart_after.map(|d| e.at + d),
                }),
                _ => None,
            })
            .collect()
    }

    /// The engine-facing fault profile of one replica generation activated
    /// at `from`: its next crash at or after `from`, plus every slowdown
    /// window (windows before activation are harmless — containment checks
    /// are by absolute time).
    pub fn profile_for(&self, replica: u32, from: SimTime) -> ReplicaFaultProfile {
        let crash_at = self
            .crashes_for(replica)
            .iter()
            .map(|c| c.at)
            .find(|&at| at >= from);
        let windows = self
            .events
            .iter()
            .filter(|e| e.replica == replica)
            .filter_map(|e| match e.kind {
                FaultKind::Straggler { duration, factor } => Some(SlowWindow {
                    start: e.at,
                    end: e.at + duration,
                    factor,
                    drift: false,
                }),
                FaultKind::PredictorDrift { duration, bias } => Some(SlowWindow {
                    start: e.at,
                    end: e.at + duration,
                    factor: bias,
                    drift: true,
                }),
                FaultKind::Crash { .. } => None,
            })
            .collect();
        ReplicaFaultProfile { crash_at, windows }
    }

    /// Whether `replica` is up (serving) at `t`: not inside any crash
    /// outage. A crash with no restart keeps the replica down forever.
    pub fn is_up_at(&self, replica: u32, t: SimTime) -> bool {
        for c in self.crashes_for(replica) {
            if c.at <= t {
                match c.restart_at {
                    None => return false,
                    Some(r) if t < r => return false,
                    Some(_) => {}
                }
            }
        }
        true
    }

    /// The sorted set of replicas up at `t`.
    pub fn up_replicas_at(&self, t: SimTime) -> Vec<u32> {
        (0..self.replicas)
            .filter(|&r| self.is_up_at(r, t))
            .collect()
    }
}

/// Draws the crash timeline of one replica into `out`.
fn generate_crashes(
    config: &FaultConfig,
    replica: u32,
    horizon_secs: f64,
    seeds: &SeedStream,
    out: &mut Vec<FaultEvent>,
) {
    if config.crash_rate_per_hour <= 0.0 || config.max_crashes_per_replica == 0 {
        return;
    }
    let rate_per_sec = config.crash_rate_per_hour / 3_600.0;
    let mut rng = seeds.derive_indexed("fault-crash", u64::from(replica));
    let mut t = 0.0;
    let cap = nums::u32_to_usize(config.max_crashes_per_replica).min(MAX_EVENTS_PER_CLASS);
    for _ in 0..cap {
        t += exponential_gap_secs(&mut rng, rate_per_sec);
        if t >= horizon_secs {
            break;
        }
        out.push(FaultEvent {
            at: SimTime::from_secs_f64(t),
            replica,
            kind: FaultKind::Crash {
                restart_after: config.restart_downtime,
            },
        });
        match config.restart_downtime {
            // The replica is down for the outage; the next crash can only
            // hit the restarted instance.
            Some(downtime) => t += downtime.as_secs_f64(),
            // Permanent loss: no further crashes are possible.
            None => break,
        }
    }
}

/// Draws non-overlapping slowdown windows of one class for one replica.
#[allow(clippy::too_many_arguments)]
fn generate_windows(
    label: &str,
    rate_per_hour: f64,
    duration: SimDuration,
    factor: f64,
    drift: bool,
    replica: u32,
    horizon_secs: f64,
    seeds: &SeedStream,
    out: &mut Vec<FaultEvent>,
) {
    if rate_per_hour <= 0.0 || duration.is_zero() || factor <= 1.0 {
        return;
    }
    let rate_per_sec = rate_per_hour / 3_600.0;
    let mut rng = seeds.derive_indexed(label, u64::from(replica));
    let mut t = 0.0;
    for _ in 0..MAX_EVENTS_PER_CLASS {
        t += exponential_gap_secs(&mut rng, rate_per_sec);
        if t >= horizon_secs {
            break;
        }
        let kind = if drift {
            FaultKind::PredictorDrift {
                duration,
                bias: factor,
            }
        } else {
            FaultKind::Straggler { duration, factor }
        };
        out.push(FaultEvent {
            at: SimTime::from_secs_f64(t),
            replica,
            kind,
        });
        // Windows of one class never overlap on a replica.
        t += duration.as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::from_secs(3_600)
    }

    #[test]
    fn zero_rates_yield_empty_schedule() {
        let s = FaultSchedule::generate(&FaultConfig::none(), 4, horizon(), &SeedStream::new(1));
        assert!(s.is_empty());
        assert!(s.is_up_at(0, SimTime::from_secs(100)));
        assert_eq!(s.up_replicas_at(SimTime::from_secs(100)), vec![0, 1, 2, 3]);
        assert_eq!(
            s.profile_for(2, SimTime::ZERO),
            ReplicaFaultProfile::healthy()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::moderate();
        let a = FaultSchedule::generate(&cfg, 3, horizon(), &SeedStream::new(7));
        let b = FaultSchedule::generate(&cfg, 3, horizon(), &SeedStream::new(7));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "moderate config over an hour must fault");
        let c = FaultSchedule::generate(&cfg, 3, horizon(), &SeedStream::new(8));
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn adding_replicas_preserves_existing_timelines() {
        let cfg = FaultConfig::moderate();
        let seeds = SeedStream::new(3);
        let small = FaultSchedule::generate(&cfg, 2, horizon(), &seeds);
        let large = FaultSchedule::generate(&cfg, 4, horizon(), &seeds);
        for r in 0..2 {
            assert_eq!(small.crashes_for(r), large.crashes_for(r));
            assert_eq!(
                small.profile_for(r, SimTime::ZERO),
                large.profile_for(r, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let cfg = FaultConfig::moderate();
        let s = FaultSchedule::generate(&cfg, 4, horizon(), &SeedStream::new(11));
        let events = s.events();
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "events must be time-sorted");
        }
        assert!(events.iter().all(|e| e.at < horizon()));
        assert!(events.iter().all(|e| e.replica < 4));
    }

    #[test]
    fn crash_outage_and_restart_windows() {
        let mut cfg = FaultConfig::none();
        cfg.crash_rate_per_hour = 2.0;
        cfg.restart_downtime = Some(SimDuration::from_secs(60));
        cfg.max_crashes_per_replica = 8;
        let s = FaultSchedule::generate(&cfg, 1, horizon(), &SeedStream::new(5));
        let crashes = s.crashes_for(0);
        assert!(!crashes.is_empty());
        let c = crashes[0];
        let restart = c.restart_at.expect("downtime configured");
        assert_eq!(restart, c.at + SimDuration::from_secs(60));
        assert!(s.is_up_at(0, c.at.saturating_sub(SimDuration::from_micros(1))));
        assert!(!s.is_up_at(0, c.at));
        assert!(!s.is_up_at(0, c.at + SimDuration::from_secs(59)));
        assert!(s.is_up_at(0, restart));
    }

    #[test]
    fn permanent_crash_never_restarts() {
        let mut cfg = FaultConfig::none();
        cfg.crash_rate_per_hour = 4.0;
        cfg.restart_downtime = None;
        cfg.max_crashes_per_replica = 8;
        let s = FaultSchedule::generate(&cfg, 2, horizon(), &SeedStream::new(9));
        let crashes = s.crashes_for(0);
        assert_eq!(crashes.len(), 1, "a permanent crash ends the timeline");
        assert!(!s.is_up_at(0, horizon().saturating_sub(SimDuration::from_micros(1))));
    }

    #[test]
    fn profile_skips_crashes_before_activation() {
        let mut cfg = FaultConfig::none();
        cfg.crash_rate_per_hour = 6.0;
        cfg.restart_downtime = Some(SimDuration::from_secs(10));
        cfg.max_crashes_per_replica = 16;
        let s = FaultSchedule::generate(&cfg, 1, horizon(), &SeedStream::new(13));
        let crashes = s.crashes_for(0);
        assert!(crashes.len() >= 2, "need at least two crashes for the test");
        let second_gen = s.profile_for(0, crashes[0].restart_at.expect("restarts on"));
        assert_eq!(second_gen.crash_at, Some(crashes[1].at));
    }

    #[test]
    fn slowdown_windows_compose() {
        let profile = ReplicaFaultProfile {
            crash_at: None,
            windows: vec![
                SlowWindow {
                    start: SimTime::from_secs(10),
                    end: SimTime::from_secs(20),
                    factor: 2.0,
                    drift: false,
                },
                SlowWindow {
                    start: SimTime::from_secs(15),
                    end: SimTime::from_secs(30),
                    factor: 1.5,
                    drift: true,
                },
            ],
        };
        assert_eq!(profile.slowdown_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(profile.slowdown_at(SimTime::from_secs(12)), 2.0);
        assert_eq!(profile.slowdown_at(SimTime::from_secs(16)), 3.0);
        assert_eq!(profile.slowdown_at(SimTime::from_secs(25)), 1.5);
        assert_eq!(
            profile.slowdown_at(SimTime::from_secs(30)),
            1.0,
            "end exclusive"
        );
    }

    #[test]
    fn intensity_scaling_monotone() {
        let cfg = FaultConfig::moderate();
        let zero = cfg.scaled(0.0);
        assert!(zero.is_none());
        let double = cfg.scaled(2.0);
        assert_eq!(double.crash_rate_per_hour, cfg.crash_rate_per_hour * 2.0);
        assert_eq!(double.straggler_duration, cfg.straggler_duration);
        let n_at = |c: &FaultConfig, seed: u64| {
            FaultSchedule::generate(c, 4, horizon(), &SeedStream::new(seed))
                .events()
                .len()
        };
        // Higher intensity produces at least as many events on average;
        // check a fixed seed where it strictly grows.
        assert!(n_at(&double, 21) >= n_at(&cfg, 21));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = FaultConfig::moderate();
        let s = FaultSchedule::generate(&cfg, 2, horizon(), &SeedStream::new(17));
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<FaultSchedule>(&json).unwrap(), s);
        let cfg_json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(serde_json::from_str::<FaultConfig>(&cfg_json).unwrap(), cfg);
    }
}
