//! Model, GPU, and parallelism descriptions.
//!
//! These structs carry just enough architectural detail to drive the
//! analytical latency model: parameter count (weight-read time and GEMM
//! FLOPs), layer/head geometry (KV-cache bytes per token), and per-GPU
//! compute/bandwidth envelopes. The three constructors on
//! [`HardwareConfig`] correspond to Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Attention layout of a model — decides KV-cache bytes per token.
///
/// The paper deliberately spans both: Llama3 models use grouped-query
/// attention (small KV), Qwen-7B uses multi-head attention (large KV),
/// which stresses the decode-attention term of the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Multi-head attention: one KV head per query head.
    Mha,
    /// Grouped-query attention with the given number of KV heads.
    Gqa {
        /// Number of key/value heads shared across the query heads.
        kv_heads: u32,
    },
}

/// Architecture of a served model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"Llama3-8B"`.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Number of query heads.
    pub heads: u32,
    /// Attention layout.
    pub attention: AttentionKind,
    /// Bytes per weight element (2 for bf16).
    pub bytes_per_param: u32,
}

impl ModelSpec {
    /// Head dimension (`hidden / heads`).
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.heads
    }

    /// Number of KV heads for this model's attention layout.
    pub fn kv_heads(&self) -> u32 {
        match self.attention {
            AttentionKind::Mha => self.heads,
            AttentionKind::Gqa { kv_heads } => kv_heads,
        }
    }

    /// KV-cache bytes stored per token across all layers (keys + values).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.kv_heads() as u64
            * self.head_dim() as u64
            * self.bytes_per_param as u64
            * self.layers as u64
    }

    /// Total weight bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.bytes_per_param as u64
    }

    /// Llama3-8B: 32 layers, 4096 hidden, GQA with 8 KV heads.
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "Llama3-8B".to_owned(),
            params: 8_000_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            attention: AttentionKind::Gqa { kv_heads: 8 },
            bytes_per_param: 2,
        }
    }

    /// Qwen-7B: 32 layers, 4096 hidden, full MHA (32 KV heads).
    pub fn qwen_7b() -> Self {
        ModelSpec {
            name: "Qwen-7B".to_owned(),
            params: 7_000_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            attention: AttentionKind::Mha,
            bytes_per_param: 2,
        }
    }

    /// Llama3-70B: 80 layers, 8192 hidden, GQA with 8 KV heads.
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "Llama3-70B".to_owned(),
            params: 70_000_000_000,
            layers: 80,
            hidden: 8192,
            heads: 64,
            attention: AttentionKind::Gqa { kv_heads: 8 },
            bytes_per_param: 2,
        }
    }
}

/// Compute/memory envelope of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-80GB"`.
    pub name: String,
    /// Peak dense bf16 throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// Peak HBM bandwidth in GB/s.
    pub peak_bw_gbps: f64,
    /// HBM capacity in GiB.
    pub memory_gib: f64,
    /// Fraction of peak FLOPs realistically achieved by fused
    /// prefill/decode kernels.
    pub flops_efficiency: f64,
    /// Fraction of peak bandwidth realistically achieved by weight and
    /// KV-cache streaming.
    pub bw_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA A100 80 GB SXM.
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-80GB".to_owned(),
            peak_tflops: 312.0,
            peak_bw_gbps: 2039.0,
            memory_gib: 80.0,
            // End-to-end calibration constant (see crate::analytical):
            // fitted so the Figure-4 throughput/latency curve matches the
            // paper, not a microbenchmark claim.
            flops_efficiency: 0.88,
            bw_efficiency: 0.65,
        }
    }

    /// NVIDIA H100 80 GB SXM.
    pub fn h100_80gb() -> Self {
        GpuSpec {
            name: "H100-80GB".to_owned(),
            peak_tflops: 989.0,
            peak_bw_gbps: 3350.0,
            memory_gib: 80.0,
            flops_efficiency: 0.45,
            bw_efficiency: 0.68,
        }
    }

    /// Achievable FLOP/s (peak × efficiency), in FLOP per second.
    pub fn effective_flops(&self) -> f64 {
        self.peak_tflops * 1e12 * self.flops_efficiency
    }

    /// Achievable bandwidth (peak × efficiency), in bytes per second.
    pub fn effective_bw(&self) -> f64 {
        self.peak_bw_gbps * 1e9 * self.bw_efficiency
    }
}

/// Tensor-parallel degree and its communication overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Number of GPUs the model is sharded across.
    pub tensor_parallel: u32,
    /// Additional per-iteration all-reduce cost in microseconds for each
    /// extra TP rank (NVLink all-reduce latency floor).
    pub tp_sync_us_per_rank: f64,
}

impl Parallelism {
    /// Single-GPU execution.
    pub fn tp(degree: u32) -> Self {
        Parallelism {
            tensor_parallel: degree.max(1),
            tp_sync_us_per_rank: 550.0,
        }
    }

    /// Per-iteration synchronization cost in microseconds.
    pub fn sync_overhead_us(&self) -> f64 {
        (self.tensor_parallel.saturating_sub(1)) as f64 * self.tp_sync_us_per_rank
    }
}

/// A full serving configuration: model × GPU × parallelism (one row of
/// Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// The served model.
    pub model: ModelSpec,
    /// The GPU type each shard runs on.
    pub gpu: GpuSpec,
    /// Tensor-parallel layout.
    pub parallelism: Parallelism,
}

impl HardwareConfig {
    /// Table 1 row 1: Llama3-8B on one A100.
    pub fn llama3_8b_a100_tp1() -> Self {
        HardwareConfig {
            model: ModelSpec::llama3_8b(),
            gpu: GpuSpec::a100_80gb(),
            parallelism: Parallelism::tp(1),
        }
    }

    /// Table 1 row 2: Qwen-7B on two A100s (TP2, MHA).
    pub fn qwen_7b_a100_tp2() -> Self {
        HardwareConfig {
            model: ModelSpec::qwen_7b(),
            gpu: GpuSpec::a100_80gb(),
            parallelism: Parallelism::tp(2),
        }
    }

    /// Table 1 row 3: Llama3-70B on four H100s (TP4).
    pub fn llama3_70b_h100_tp4() -> Self {
        HardwareConfig {
            model: ModelSpec::llama3_70b(),
            gpu: GpuSpec::h100_80gb(),
            parallelism: Parallelism::tp(4),
        }
    }

    /// All three paper configurations, in Table 1 order.
    pub fn paper_configs() -> Vec<HardwareConfig> {
        vec![
            Self::llama3_8b_a100_tp1(),
            Self::qwen_7b_a100_tp2(),
            Self::llama3_70b_h100_tp4(),
        ]
    }

    /// Number of GPUs one replica of this configuration occupies.
    pub fn gpus_per_replica(&self) -> u32 {
        self.parallelism.tensor_parallel
    }

    /// Weight bytes resident on each GPU shard.
    pub fn weight_bytes_per_gpu(&self) -> u64 {
        self.model.weight_bytes() / self.parallelism.tensor_parallel as u64
    }

    /// HBM bytes left for KV cache on each shard after weights and a fixed
    /// activation/fragmentation reserve.
    pub fn kv_budget_bytes_per_gpu(&self) -> u64 {
        let total = (self.gpu.memory_gib * 1024.0 * 1024.0 * 1024.0) as u64;
        let reserve = total / 10; // activations, CUDA context, fragmentation
        total
            .saturating_sub(self.weight_bytes_per_gpu())
            .saturating_sub(reserve)
    }

    /// Total KV-cache token capacity of one replica (all shards pooled;
    /// with TP the KV is sharded the same way as the weights).
    pub fn kv_token_capacity(&self) -> u64 {
        let per_gpu = self.kv_budget_bytes_per_gpu();
        let total = per_gpu * self.parallelism.tensor_parallel as u64;
        total / self.model.kv_bytes_per_token().max(1)
    }

    /// Short display label, e.g. `"Llama3-8B (TP1-A100-80GB)"`.
    pub fn label(&self) -> String {
        format!(
            "{} (TP{}-{})",
            self.model.name, self.parallelism.tensor_parallel, self.gpu.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_bytes_gqa_vs_mha() {
        let gqa = ModelSpec::llama3_8b();
        let mha = ModelSpec::qwen_7b();
        // 8 KV heads vs 32 KV heads, same geometry otherwise -> 4x KV.
        assert_eq!(gqa.kv_bytes_per_token() * 4, mha.kv_bytes_per_token());
        // Llama3-8B: 2 * 8 * 128 * 2 * 32 = 131072 bytes per token.
        assert_eq!(gqa.kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn head_dim_is_consistent() {
        assert_eq!(ModelSpec::llama3_8b().head_dim(), 128);
        assert_eq!(ModelSpec::llama3_70b().head_dim(), 128);
    }

    #[test]
    fn weight_bytes_match_param_count() {
        assert_eq!(ModelSpec::llama3_8b().weight_bytes(), 16_000_000_000);
    }

    #[test]
    fn tp_sharding_reduces_per_gpu_weights() {
        let hw = HardwareConfig::llama3_70b_h100_tp4();
        assert_eq!(hw.weight_bytes_per_gpu(), 140_000_000_000 / 4);
        assert_eq!(hw.gpus_per_replica(), 4);
    }

    #[test]
    fn kv_capacity_is_positive_and_plausible() {
        for hw in HardwareConfig::paper_configs() {
            let cap = hw.kv_token_capacity();
            assert!(
                cap > 50_000,
                "{} should hold a few hundred thousand KV tokens, got {cap}",
                hw.label()
            );
            assert!(cap < 5_000_000, "{}: implausibly large {cap}", hw.label());
        }
    }

    #[test]
    fn tp1_has_no_sync_overhead() {
        assert_eq!(Parallelism::tp(1).sync_overhead_us(), 0.0);
        assert!(Parallelism::tp(4).sync_overhead_us() > 0.0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            HardwareConfig::llama3_8b_a100_tp1().label(),
            "Llama3-8B (TP1-A100-80GB)"
        );
    }

    #[test]
    fn serde_round_trip() {
        let hw = HardwareConfig::qwen_7b_a100_tp2();
        let json = serde_json::to_string(&hw).unwrap();
        let back: HardwareConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hw);
    }
}
