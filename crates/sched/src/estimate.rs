//! Processing-time estimation used by priorities and the violation
//! checker.
//!
//! Two estimates drive QoServe's decisions (§3.4):
//!
//! 1. **Prefill time** — predictable from the remaining prompt tokens and
//!    a per-token rate derived from the latency predictor.
//! 2. **Decode time** — unknown at serving time; the paper keeps a running
//!    per-application history of generated token counts and
//!    over-approximates by two standard deviations.

use std::collections::HashMap;

use qoserve_perf::{BatchProfile, LatencyPredictor};
use qoserve_sim::{OnlineStats, SimDuration};

/// Estimates remaining processing time for queued requests.
#[derive(Debug, Clone)]
pub struct ProcessingEstimator {
    /// Estimated prefill cost per prompt token, µs (derived from the
    /// predictor at full-chunk throughput).
    prefill_us_per_token: f64,
    /// Estimated wall-clock per decode token, µs (one iteration of a
    /// typical mixed batch produces one token per decoding request).
    decode_us_per_token: f64,
    /// Fallback decode-length estimate before any history exists.
    default_decode_tokens: f64,
    /// Per-application decode-length history.
    history: HashMap<u32, OnlineStats>,
}

impl ProcessingEstimator {
    /// Derives per-token rates from `predictor`.
    ///
    /// * Prefill rate: a saturated 2048-token chunk amortises fixed costs,
    ///   giving the marginal cost per prompt token.
    /// * Decode rate: the iteration time of a representative mixed batch
    ///   (256-token chunk + 64 decodes at 1 k context), since each
    ///   iteration advances every decode by one token.
    pub fn from_predictor(predictor: &LatencyPredictor) -> Self {
        let big_chunk = BatchProfile::builder().prefill_chunk(2_048, 0).build();
        let prefill_us_per_token = predictor.predict_raw_us(&big_chunk) / 2_048.0;

        let typical = BatchProfile::builder()
            .prefill_chunk(256, 0)
            .decodes(64, 64 * 1_024)
            .build();
        let decode_us_per_token = predictor.predict_raw_us(&typical);

        ProcessingEstimator {
            prefill_us_per_token,
            decode_us_per_token,
            default_decode_tokens: 200.0,
            history: HashMap::new(),
        }
    }

    /// Builds an estimator with explicit rates (tests).
    pub fn with_rates(prefill_us_per_token: f64, decode_us_per_token: f64) -> Self {
        ProcessingEstimator {
            prefill_us_per_token,
            decode_us_per_token,
            default_decode_tokens: 200.0,
            history: HashMap::new(),
        }
    }

    /// Records the observed decode length of a completed request.
    pub fn record_decode(&mut self, app_id: u32, decode_tokens: u32) {
        self.history
            .entry(app_id)
            .or_default()
            .push(decode_tokens as f64);
    }

    /// The paper's decode-length over-approximation for `app_id`:
    /// `mean + 2σ` from history, or the cold-start default.
    pub fn estimated_decode_tokens(&self, app_id: u32) -> f64 {
        self.history
            .get(&app_id)
            .map_or(self.default_decode_tokens, |s| {
                s.mean_plus_two_sigma_or(self.default_decode_tokens)
            })
    }

    /// Estimated time to process `tokens` of prefill.
    pub fn prefill_time(&self, tokens: u32) -> SimDuration {
        SimDuration::from_micros((tokens as f64 * self.prefill_us_per_token).round() as u64)
    }

    /// Estimated time to decode `tokens` output tokens.
    pub fn decode_time(&self, tokens: f64) -> SimDuration {
        SimDuration::from_micros((tokens.max(0.0) * self.decode_us_per_token).round() as u64)
    }

    /// Estimated end-to-end remaining time for a request of `app_id` with
    /// `prefill_remaining` prompt tokens still to run: prefill plus the
    /// estimated decode tail.
    pub fn remaining_time(&self, app_id: u32, prefill_remaining: u32) -> SimDuration {
        self.prefill_time(prefill_remaining)
            + self.decode_time(self.estimated_decode_tokens(app_id))
    }

    /// Prefill µs/token rate (diagnostics).
    pub fn prefill_rate_us(&self) -> f64 {
        self.prefill_us_per_token
    }

    /// Decode µs/token rate (diagnostics).
    pub fn decode_rate_us(&self) -> f64 {
        self.decode_us_per_token
    }

    /// Number of applications with recorded history.
    pub fn tracked_apps(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;

    fn estimator() -> ProcessingEstimator {
        ProcessingEstimator::from_predictor(&LatencyPredictor::analytical(
            &HardwareConfig::llama3_8b_a100_tp1(),
        ))
    }

    #[test]
    fn rates_are_plausible_for_8b_a100() {
        let e = estimator();
        // Prefill: tens of µs per token (≈10-20k tokens/s saturated).
        assert!(
            (30.0..150.0).contains(&e.prefill_rate_us()),
            "prefill rate {} us/token",
            e.prefill_rate_us()
        );
        // Decode: one iteration of a typical batch, i.e. tens of ms.
        assert!(
            (10_000.0..80_000.0).contains(&e.decode_rate_us()),
            "decode rate {} us/token",
            e.decode_rate_us()
        );
    }

    #[test]
    fn cold_start_uses_default() {
        let e = estimator();
        assert_eq!(e.estimated_decode_tokens(42), 200.0);
    }

    #[test]
    fn history_mean_plus_two_sigma() {
        let mut e = ProcessingEstimator::with_rates(50.0, 30_000.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            e.record_decode(7, v as u32);
        }
        // mean 5, sigma 2 -> 9.
        assert!((e.estimated_decode_tokens(7) - 9.0).abs() < 1e-9);
        // Other apps unaffected.
        assert_eq!(e.estimated_decode_tokens(8), 200.0);
        assert_eq!(e.tracked_apps(), 1);
    }

    #[test]
    fn time_estimates_scale_linearly() {
        let e = ProcessingEstimator::with_rates(100.0, 10_000.0);
        assert_eq!(e.prefill_time(1_000), SimDuration::from_micros(100_000));
        assert_eq!(e.decode_time(50.0), SimDuration::from_micros(500_000));
        assert_eq!(
            e.remaining_time(1, 1_000),
            SimDuration::from_micros(100_000) + e.decode_time(200.0)
        );
    }

    #[test]
    fn negative_decode_estimate_clamps() {
        let e = ProcessingEstimator::with_rates(1.0, 1.0);
        assert_eq!(e.decode_time(-5.0), SimDuration::ZERO);
    }
}
