//! Rate-limiting admission control — the production overload baseline.
//!
//! §2.2 of the paper describes how current systems manage overload:
//! "Rate Limiting: these mechanisms simply reject excess requests without
//! considering their relative importance or potential impact." This
//! module implements that baseline as a wrapper around any inner
//! scheduler: arrivals beyond a backlog cap are rejected outright (they
//! surface as unfinished violations), regardless of tier or priority.
//! Comparing it against eager relegation quantifies the paper's
//! graceful-degradation argument.

use qoserve_sim::SimTime;
use qoserve_workload::RequestSpec;

use crate::job::{DecodeJob, PrefillJob};
use crate::{BatchPlan, Constraints, Scheduler};

/// Admission-controlled wrapper: rejects arrivals when the inner
/// scheduler's pending prompt-token backlog exceeds `max_backlog_tokens`.
///
/// Rejected requests are never scheduled; they are returned by
/// [`drain_pending`](Scheduler::drain_pending) so the engine accounts
/// them as violated — exactly what a 429 means to the client.
#[derive(Debug)]
pub struct RateLimitScheduler<S> {
    inner: S,
    max_backlog_tokens: u64,
    /// When true, the backlog measure adds the estimated decode tokens
    /// still owed by admitted requests. The default (`false`, matching
    /// [`new`](Self::new)) counts only pending prompt tokens — the
    /// historical behaviour, which under-rejects late in bursts because
    /// admitted-but-decoding work is invisible to the cap.
    include_decode_backlog: bool,
    /// Decode tokens owed by admitted, not-yet-completed requests. This
    /// is the spec's decode length — a simulator-oracle estimate; a real
    /// deployment would use the per-app history instead.
    outstanding_decode_tokens: u64,
    rejected: Vec<PrefillJob>,
    name: String,
}

impl<S: Scheduler> RateLimitScheduler<S> {
    /// Wraps `inner`, rejecting arrivals once the pending backlog exceeds
    /// `max_backlog_tokens`.
    pub fn new(inner: S, max_backlog_tokens: u64) -> Self {
        let name = format!("RateLimited({})", inner.name());
        RateLimitScheduler {
            inner,
            max_backlog_tokens,
            include_decode_backlog: false,
            outstanding_decode_tokens: 0,
            rejected: Vec::new(),
            name,
        }
    }

    /// Enables decode-aware backlog accounting: admitted requests keep
    /// counting toward the cap until their decode completes.
    pub fn with_decode_backlog(mut self) -> Self {
        self.include_decode_backlog = true;
        self
    }

    /// The backlog measure the cap is compared against.
    fn backlog_tokens(&self) -> u64 {
        let mut backlog = self.inner.pending_prefill_tokens();
        if self.include_decode_backlog {
            backlog = backlog.saturating_add(self.outstanding_decode_tokens);
        }
        backlog
    }

    /// Requests rejected so far.
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Scheduler> Scheduler for RateLimitScheduler<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_arrival(&mut self, job: PrefillJob, now: SimTime) {
        if self.backlog_tokens() >= self.max_backlog_tokens {
            // 429: importance-blind rejection.
            self.rejected.push(job);
        } else {
            self.outstanding_decode_tokens = self
                .outstanding_decode_tokens
                .saturating_add(job.spec.decode_tokens as u64);
            self.inner.on_arrival(job, now);
        }
    }

    fn plan_batch(
        &mut self,
        now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        self.inner.plan_batch(now, decodes, constraints)
    }

    fn on_completion(&mut self, spec: &RequestSpec, observed_decode_tokens: u32) {
        // Release exactly what admission charged (the spec length), not
        // the observed count, so the ledger always balances.
        self.outstanding_decode_tokens = self
            .outstanding_decode_tokens
            .saturating_sub(spec.decode_tokens as u64);
        self.inner.on_completion(spec, observed_decode_tokens);
    }

    fn on_iteration(
        &mut self,
        batch: &qoserve_perf::BatchProfile,
        observed: qoserve_sim::SimDuration,
        now: SimTime,
    ) {
        self.inner.on_iteration(batch, observed, now);
    }

    fn pending_prefills(&self) -> usize {
        self.inner.pending_prefills()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.inner.pending_prefill_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        // Unclaimed rejections ride along so a caller that never asks for
        // them separately still accounts every request (conservation).
        let mut jobs = self.inner.drain_pending();
        jobs.append(&mut self.rejected);
        jobs
    }

    fn drain_rejected(&mut self) -> Vec<PrefillJob> {
        std::mem::take(&mut self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OrderPolicy;
    use crate::sarathi::SarathiScheduler;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(id: u64, prompt: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs(id),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    fn limited(cap: u64) -> RateLimitScheduler<SarathiScheduler> {
        RateLimitScheduler::new(SarathiScheduler::new(OrderPolicy::Fcfs, 256), cap)
    }

    #[test]
    fn admits_until_backlog_cap() {
        let mut s = limited(1_000);
        s.on_arrival(PrefillJob::new(spec(0, 600)), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(spec(1, 600)), SimTime::ZERO);
        // Backlog is now 1200 >= 1000: the third arrival bounces.
        s.on_arrival(PrefillJob::new(spec(2, 100)), SimTime::ZERO);
        assert_eq!(s.pending_prefills(), 2);
        assert_eq!(s.rejected_count(), 1);
    }

    #[test]
    fn rejection_is_importance_blind() {
        use qoserve_workload::Priority;
        let mut s = limited(100);
        s.on_arrival(PrefillJob::new(spec(0, 200)), SimTime::ZERO);
        let mut important = spec(1, 50);
        important.slo = Slo::of_tier(QosTier::paper_q1()).with_priority(Priority::Important);
        s.on_arrival(PrefillJob::new(important), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 1, "even important traffic bounces");
    }

    #[test]
    fn drain_includes_rejections() {
        let mut s = limited(100);
        s.on_arrival(PrefillJob::new(spec(0, 200)), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(spec(1, 50)), SimTime::ZERO);
        let drained = s.drain_pending();
        assert_eq!(drained.len(), 2);
        assert_eq!(s.rejected_count(), 0);
    }

    #[test]
    fn drain_rejected_separates_bounced_jobs() {
        let mut s = limited(100);
        s.on_arrival(PrefillJob::new(spec(0, 200)), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(spec(1, 50)), SimTime::ZERO);
        let rejected = s.drain_rejected();
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].spec.id, spec(1, 50).id);
        // Once claimed, rejections no longer ride along with the queue.
        let drained = s.drain_pending();
        assert_eq!(drained.len(), 1);
        assert_eq!(s.rejected_count(), 0);
    }

    #[test]
    fn default_drain_rejected_is_empty() {
        let mut inner = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        inner.on_arrival(PrefillJob::new(spec(0, 100)), SimTime::ZERO);
        assert!(inner.drain_rejected().is_empty());
        assert_eq!(inner.drain_pending().len(), 1);
    }

    #[test]
    fn capacity_frees_as_backlog_drains() {
        let mut s = limited(500);
        s.on_arrival(PrefillJob::new(spec(0, 600)), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(spec(1, 100)), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 1);
        // Drain the backlog through batches.
        for _ in 0..3 {
            let _ = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        }
        assert_eq!(s.pending_prefill_tokens(), 0);
        s.on_arrival(PrefillJob::new(spec(2, 100)), SimTime::ZERO);
        assert_eq!(s.pending_prefills(), 1, "admission resumes after drain");
    }

    #[test]
    fn name_reflects_inner() {
        assert_eq!(limited(1).name(), "RateLimited(Sarathi-FCFS)");
    }

    #[test]
    fn decode_backlog_is_invisible_by_default() {
        // Two admitted requests whose prompts drain instantly but whose
        // decodes are still owed: the plain cap lets everything through.
        let mut s = limited(500);
        s.on_arrival(PrefillJob::new(spec(0, 300)), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(spec(1, 100)), SimTime::ZERO);
        for _ in 0..3 {
            let _ = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        }
        assert_eq!(s.pending_prefill_tokens(), 0);
        s.on_arrival(PrefillJob::new(spec(2, 100)), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 0, "default cap ignores decode debt");
    }

    #[test]
    fn decode_aware_cap_counts_admitted_decode_debt() {
        // Same scenario with decode-aware accounting: big decode debts
        // keep counting against the cap until completion.
        let mut s = limited(500).with_decode_backlog();
        let mut big = spec(0, 300);
        big.decode_tokens = 400;
        let mut small = spec(1, 100);
        small.decode_tokens = 150;
        s.on_arrival(PrefillJob::new(big.clone()), SimTime::ZERO);
        s.on_arrival(PrefillJob::new(small), SimTime::ZERO);
        for _ in 0..3 {
            let _ = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        }
        assert_eq!(s.pending_prefill_tokens(), 0);
        // Prompt backlog is empty but 550 decode tokens are outstanding.
        s.on_arrival(PrefillJob::new(spec(2, 100)), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 1, "decode debt must enforce the cap");
        // Completing the big request releases its charge and re-opens
        // admission (150 outstanding < 500).
        s.on_completion(&big, 400);
        s.on_arrival(PrefillJob::new(spec(3, 100)), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 1, "admission resumes after release");
    }

    #[test]
    fn rejected_jobs_carry_no_decode_charge() {
        let mut s = limited(100).with_decode_backlog();
        let mut big = spec(0, 200);
        big.decode_tokens = 1_000;
        s.on_arrival(PrefillJob::new(big), SimTime::ZERO);
        // Bounced: its decode debt must not count.
        let mut bounced = spec(1, 50);
        bounced.decode_tokens = 1_000_000;
        s.on_arrival(PrefillJob::new(bounced), SimTime::ZERO);
        assert_eq!(s.rejected_count(), 1);
        // Only the admitted request's debt is on the ledger.
        assert_eq!(s.backlog_tokens(), 200 + 1_000);
    }
}
