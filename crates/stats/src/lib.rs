//! `qoserve-stats`: a streaming aggregation layer over the trace stream.
//!
//! The trace taxonomy ([`qoserve_trace::TraceEvent`]) is the one closed
//! vocabulary every subsystem already speaks; this crate folds that
//! stream *live* into typed per-tier / per-replica / fleet statistics
//! instead of re-deriving them from retained captures after the fact.
//! Three layers:
//!
//! * [`StatsAggregator`] — the pure fold. Records are buffered on push
//!   and folded only at snapshot boundaries: the batch of records
//!   stamped strictly before the boundary is canonically sorted
//!   (`(time_us, replica, seq)`) and folded left-to-right, so the
//!   resulting [`StatsDelta`] is a pure function of the simulation, not
//!   of sink interleaving — byte-identical serial vs parallel at any
//!   `QOSERVE_THREADS`.
//! * [`StatsHandle`] — live wiring: a [`StatsHandle::tee`] trace sink
//!   feeding the aggregator alongside any capture sink, and a
//!   [`qoserve_trace::ControlObserver`] implementation the cluster
//!   kernels drive at deterministic sim-time cadence boundaries.
//!   Observation is contractually invisible: a stats-enabled run's
//!   outcomes are bit-identical to the unstatted path.
//! * [`StatsServer`] — the in-process typed endpoint
//!   (`query(StatsQuery) -> StatsReply`) plus the JSONL snapshot
//!   stream ([`stream_to_jsonl`] / [`stream_from_jsonl`]) that
//!   `qoservetop` renders live or in replay.
//!
//! The snapshot schema is versioned ([`SNAPSHOT_SCHEMA_VERSION`]) and
//! serde-back-compat: every container tolerates missing and unknown
//! fields, and deltas [`compose`] to the full snapshot bit-exactly.

pub mod aggregate;
pub mod live;
pub mod server;
pub mod snapshot;

pub use aggregate::{StatsAggregator, StatsConfig};
pub use live::{stats_only_sink, StatsHandle};
pub use server::{StatsMeta, StatsQuery, StatsReply, StatsServer};
pub use snapshot::{
    compose, stream_from_jsonl, stream_to_jsonl, FleetStats, ReplicaStats, SnapshotStream,
    StatsDelta, StatsFrame, StatsSnapshot, TierStats, SNAPSHOT_SCHEMA_VERSION,
};
