//! ConServe-style binary collocation (§5, related work).
//!
//! ConServe [Qiao et al. 2024] harvests idle capacity by collocating
//! offline (batch) work with online (interactive) serving under a strict
//! binary rule: interactive requests always run first, and offline work
//! fills whatever budget remains. The paper's critique — which this
//! implementation lets the benchmarks verify — is that a binary
//! interactive/offline split is "inadequate for multi-QoS scenarios where
//! all requests have definite SLO requirements": every non-interactive
//! tier collapses into one best-effort class, so a 600 s-TTLT tier gets
//! no more protection than an 1800 s one, and offline work receives
//! nothing at all under sustained interactive pressure.

use qoserve_sim::SimTime;
use qoserve_workload::RequestSpec;

use crate::job::{DecodeJob, PrefillJob};
use crate::policy::OrderPolicy;
use crate::queue::JobQueue;
use crate::{BatchPlan, Constraints, PrefillAssignment, Scheduler};

/// Binary interactive-first scheduler modelling ConServe.
///
/// Interactive requests are served FCFS with the fixed chunk budget;
/// offline (non-interactive) requests only receive tokens when no
/// interactive prefill is pending.
#[derive(Debug, Clone)]
pub struct ConServeScheduler {
    chunk_size: u32,
    interactive: JobQueue,
    offline: JobQueue,
}

impl ConServeScheduler {
    /// Creates the scheduler with the given fixed token budget.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: u32) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ConServeScheduler {
            chunk_size,
            interactive: JobQueue::new(),
            offline: JobQueue::new(),
        }
    }

    /// Pending interactive prefills (diagnostics).
    pub fn pending_interactive(&self) -> usize {
        self.interactive.len()
    }

    /// Pending offline prefills (diagnostics).
    pub fn pending_offline(&self) -> usize {
        self.offline.len()
    }

    /// Fills up to `budget` tokens from `queue` into `plan`.
    fn fill_from(
        queue: &mut JobQueue,
        plan: &mut BatchPlan,
        budget: &mut u32,
        kv_left: &mut u64,
        new_started: &mut usize,
        max_new: usize,
    ) {
        while *budget > 0 && *kv_left > 0 {
            let mut job = match queue.pop() {
                Some(j) => j,
                None => break,
            };
            if job.prefill_done == 0 && *new_started >= max_new {
                let key = OrderPolicy::Fcfs.key(&job);
                queue.reinsert(job, key);
                break;
            }
            let take = (*budget)
                .min(job.remaining_tokens())
                .min((*kv_left).min(u32::MAX as u64) as u32);
            if take == 0 {
                let key = OrderPolicy::Fcfs.key(&job);
                queue.reinsert(job, key);
                break;
            }
            if job.prefill_done == 0 {
                *new_started += 1;
            }
            let context_before = job.prefill_done;
            job.prefill_done += take;
            *budget -= take;
            *kv_left -= take as u64;
            plan.prefill.push(PrefillAssignment {
                id: job.id(),
                tokens: take,
                context_before,
                completes_prefill: job.is_complete(),
                relegated: false,
            });
            if !job.is_complete() {
                let key = OrderPolicy::Fcfs.key(&job);
                queue.reinsert(job, key);
            }
        }
    }
}

impl Scheduler for ConServeScheduler {
    fn name(&self) -> &str {
        "ConServe"
    }

    fn on_arrival(&mut self, job: PrefillJob, _now: SimTime) {
        let key = OrderPolicy::Fcfs.key(&job);
        if job.spec.class().is_interactive() {
            self.interactive.push(job, key);
        } else {
            self.offline.push(job, key);
        }
    }

    fn plan_batch(
        &mut self,
        _now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        let mut budget = self.chunk_size.saturating_sub(decodes.len() as u32);
        let mut plan = BatchPlan {
            prefill: Vec::new(),
            token_budget: budget,
        };
        if !constraints.allow_prefill {
            return plan;
        }
        let mut kv_left = constraints.kv_headroom_tokens;
        let mut new_started = 0usize;
        // Online first; offline only harvests the leftovers.
        Self::fill_from(
            &mut self.interactive,
            &mut plan,
            &mut budget,
            &mut kv_left,
            &mut new_started,
            constraints.max_new_requests,
        );
        Self::fill_from(
            &mut self.offline,
            &mut plan,
            &mut budget,
            &mut kv_left,
            &mut new_started,
            constraints.max_new_requests,
        );
        plan
    }

    fn on_completion(&mut self, _spec: &RequestSpec, _observed_decode_tokens: u32) {}

    fn pending_prefills(&self) -> usize {
        self.interactive.len() + self.offline.len()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.interactive.pending_tokens() + self.offline.pending_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        let mut jobs = self.interactive.drain();
        jobs.extend(self.offline.drain());
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(id: u64, arrival_secs: u64, prompt: u32, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs(arrival_secs),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    #[test]
    fn interactive_always_preempts_offline() {
        let mut s = ConServeScheduler::new(256);
        // Offline arrived first and even started prefilling.
        s.on_arrival(
            PrefillJob::new(spec(0, 0, 1_000, QosTier::paper_q2())),
            SimTime::ZERO,
        );
        let p1 = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        assert_eq!(p1.prefill[0].id, RequestId(0));
        // An interactive request lands: it must take the whole next budget.
        s.on_arrival(
            PrefillJob::new(spec(1, 2, 1_000, QosTier::paper_q1())),
            SimTime::from_secs(2),
        );
        let p2 = s.plan_batch(SimTime::from_secs(2), &[], Constraints::unlimited());
        assert_eq!(p2.prefill[0].id, RequestId(1));
        assert_eq!(p2.prefill_tokens(), 256);
        assert_eq!(
            p2.prefill.len(),
            1,
            "offline gets nothing while online is pending"
        );
    }

    #[test]
    fn offline_harvests_leftover_budget() {
        let mut s = ConServeScheduler::new(256);
        s.on_arrival(
            PrefillJob::new(spec(0, 0, 100, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 0, 1_000, QosTier::paper_q3())),
            SimTime::ZERO,
        );
        let plan = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        assert_eq!(plan.prefill.len(), 2);
        assert_eq!(plan.prefill[0].id, RequestId(0));
        assert!(plan.prefill[0].completes_prefill);
        assert_eq!(plan.prefill[1].id, RequestId(1));
        assert_eq!(plan.prefill[1].tokens, 156);
    }

    #[test]
    fn no_distinction_between_offline_tiers() {
        // The critique: Q2 (600s) and Q3 (1800s) are served FCFS with no
        // deadline awareness — an earlier Q3 beats a later, tighter Q2.
        let mut s = ConServeScheduler::new(64);
        s.on_arrival(
            PrefillJob::new(spec(0, 0, 500, QosTier::paper_q3())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 1, 500, QosTier::paper_q2())),
            SimTime::ZERO,
        );
        let plan = s.plan_batch(SimTime::from_secs(2), &[], Constraints::unlimited());
        assert_eq!(
            plan.prefill[0].id,
            RequestId(0),
            "FCFS across offline tiers"
        );
    }

    #[test]
    fn queue_accounting() {
        let mut s = ConServeScheduler::new(256);
        s.on_arrival(
            PrefillJob::new(spec(0, 0, 300, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 0, 700, QosTier::paper_q2())),
            SimTime::ZERO,
        );
        assert_eq!(s.pending_interactive(), 1);
        assert_eq!(s.pending_offline(), 1);
        assert_eq!(s.pending_prefill_tokens(), 1_000);
        assert_eq!(s.drain_pending().len(), 2);
        assert_eq!(s.pending_prefills(), 0);
    }

    #[test]
    fn respects_gates() {
        let mut s = ConServeScheduler::new(256);
        s.on_arrival(
            PrefillJob::new(spec(0, 0, 300, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let blocked = s.plan_batch(
            SimTime::ZERO,
            &[],
            Constraints {
                kv_headroom_tokens: u64::MAX,
                allow_prefill: false,
                max_new_requests: usize::MAX,
            },
        );
        assert!(blocked.is_empty());
    }
}
