//! Buildable scheduler descriptions.
//!
//! A cluster run needs one scheduler instance per replica; a
//! [`SchedulerSpec`] captures the policy choice as plain data and builds
//! fresh instances on demand.

use qoserve_perf::{HardwareConfig, LatencyPredictor, PredictorKind};
use qoserve_sched::{
    ConServeScheduler, DeadlineAwareAdmission, MedhaConfig, MedhaScheduler, OrderPolicy,
    QoServeConfig, QoServeScheduler, RateLimitScheduler, SarathiScheduler, Scheduler,
    SlosServeConfig, SlosServeScheduler,
};
use qoserve_sim::SeedStream;

/// A scheduler policy as data, buildable per replica.
#[derive(Debug, Clone)]
pub enum SchedulerSpec {
    /// Fixed-chunk Sarathi with the given ordering.
    Sarathi {
        /// Prefill ordering policy.
        policy: OrderPolicy,
        /// Fixed per-iteration token budget.
        chunk: u32,
    },
    /// The QoServe scheduler.
    QoServe {
        /// Feature configuration (α, relegation, chunking).
        config: QoServeConfig,
        /// Which latency predictor backs dynamic chunking.
        predictor: PredictorKind,
    },
    /// Medha-style adaptive chunking (§4.5.1).
    Medha {
        /// TBT target and chunk bounds.
        config: MedhaConfig,
        /// Which latency predictor backs the chunk search.
        predictor: PredictorKind,
    },
    /// ConServe-style binary online/offline collocation (§5).
    ConServe {
        /// Fixed per-iteration token budget.
        chunk: u32,
    },
    /// SLOs-Serve-style periodic DP planning (§4.5.3).
    SlosServe {
        /// DP horizon and budget configuration.
        config: SlosServeConfig,
    },
    /// §2.2's rate-limiting overload baseline: an inner scheduler behind
    /// an importance-blind backlog cap.
    RateLimited {
        /// The admission-controlled scheduler.
        inner: Box<SchedulerSpec>,
        /// Backlog cap in pending prompt tokens.
        max_backlog_tokens: u64,
    },
    /// The resilience layer's SLO-aware gate: an inner scheduler behind
    /// an admission wrapper that rejects only provably-late requests,
    /// tightening online with observed misprediction.
    DeadlineAware {
        /// The admission-controlled scheduler.
        inner: Box<SchedulerSpec>,
        /// The predictor the completion estimate derives from.
        predictor: PredictorKind,
    },
}

impl SchedulerSpec {
    /// The paper's shared-cluster baseline: Sarathi-FCFS at chunk 256.
    pub fn sarathi_fcfs() -> Self {
        SchedulerSpec::Sarathi {
            policy: OrderPolicy::Fcfs,
            chunk: 256,
        }
    }

    /// The paper's deadline-aware baseline: Sarathi-EDF at chunk 256.
    pub fn sarathi_edf() -> Self {
        SchedulerSpec::Sarathi {
            policy: OrderPolicy::Edf,
            chunk: 256,
        }
    }

    /// The paper's length-aware baseline: Sarathi-SRPF at chunk 256.
    pub fn sarathi_srpf() -> Self {
        SchedulerSpec::Sarathi {
            policy: OrderPolicy::Srpf,
            chunk: 256,
        }
    }

    /// Default QoServe with the analytical predictor (fast; the forest
    /// variant is behaviourally equivalent within its < 10 % error).
    pub fn qoserve() -> Self {
        SchedulerSpec::QoServe {
            config: QoServeConfig::default(),
            predictor: PredictorKind::Analytical,
        }
    }

    /// QoServe with a custom configuration.
    pub fn qoserve_with(config: QoServeConfig) -> Self {
        SchedulerSpec::QoServe {
            config,
            predictor: PredictorKind::Analytical,
        }
    }

    /// QoServe with the online adaptive margin enabled — the resilience
    /// layer's per-replica scheduler.
    pub fn qoserve_adaptive() -> Self {
        SchedulerSpec::QoServe {
            config: QoServeConfig::adaptive(),
            predictor: PredictorKind::Analytical,
        }
    }

    /// `inner` behind the SLO-aware deadline admission gate.
    pub fn deadline_aware(inner: SchedulerSpec) -> Self {
        SchedulerSpec::DeadlineAware {
            inner: Box::new(inner),
            predictor: PredictorKind::Analytical,
        }
    }

    /// Builds a fresh scheduler instance for one replica.
    pub fn build(&self, hw: &HardwareConfig, seeds: &SeedStream) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Sarathi { policy, chunk } => {
                Box::new(SarathiScheduler::new(*policy, *chunk))
            }
            SchedulerSpec::QoServe { config, predictor } => Box::new(QoServeScheduler::new(
                config.clone(),
                LatencyPredictor::of_kind(*predictor, hw, seeds),
            )),
            SchedulerSpec::Medha { config, predictor } => Box::new(MedhaScheduler::new(
                *config,
                LatencyPredictor::of_kind(*predictor, hw, seeds),
            )),
            SchedulerSpec::ConServe { chunk } => Box::new(ConServeScheduler::new(*chunk)),
            SchedulerSpec::SlosServe { config } => Box::new(SlosServeScheduler::new(
                *config,
                LatencyPredictor::analytical(hw),
            )),
            SchedulerSpec::RateLimited {
                inner,
                max_backlog_tokens,
            } => Box::new(RateLimitScheduler::new(
                BoxedScheduler(inner.build(hw, seeds)),
                *max_backlog_tokens,
            )),
            SchedulerSpec::DeadlineAware { inner, predictor } => {
                Box::new(DeadlineAwareAdmission::new(
                    BoxedScheduler(inner.build(hw, seeds)),
                    LatencyPredictor::of_kind(*predictor, hw, seeds),
                ))
            }
        }
    }

    /// Display label, e.g. `"Sarathi-EDF"` or `"QoServe"`.
    pub fn label(&self) -> String {
        match self {
            SchedulerSpec::Sarathi { policy, .. } => format!("Sarathi-{}", policy.label()),
            SchedulerSpec::QoServe { .. } => "QoServe".to_owned(),
            SchedulerSpec::Medha { .. } => "Medha".to_owned(),
            SchedulerSpec::ConServe { .. } => "ConServe".to_owned(),
            SchedulerSpec::SlosServe { .. } => "SLOs-Serve".to_owned(),
            SchedulerSpec::RateLimited { inner, .. } => {
                format!("RateLimited({})", inner.label())
            }
            SchedulerSpec::DeadlineAware { inner, .. } => {
                format!("DeadlineAware({})", inner.label())
            }
        }
    }
}

/// Newtype making a boxed scheduler usable as the generic parameter of
/// [`RateLimitScheduler`] (which takes `S: Scheduler` by value).
struct BoxedScheduler(Box<dyn Scheduler>);

impl Scheduler for BoxedScheduler {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn on_arrival(&mut self, job: qoserve_sched::PrefillJob, now: qoserve_sim::SimTime) {
        self.0.on_arrival(job, now)
    }
    fn plan_batch(
        &mut self,
        now: qoserve_sim::SimTime,
        decodes: &[qoserve_sched::DecodeJob],
        constraints: qoserve_sched::Constraints,
    ) -> qoserve_sched::BatchPlan {
        self.0.plan_batch(now, decodes, constraints)
    }
    fn on_completion(&mut self, spec: &qoserve_workload::RequestSpec, observed: u32) {
        self.0.on_completion(spec, observed)
    }
    fn on_iteration(
        &mut self,
        batch: &qoserve_perf::BatchProfile,
        observed: qoserve_sim::SimDuration,
        now: qoserve_sim::SimTime,
    ) {
        self.0.on_iteration(batch, observed, now)
    }
    fn set_tracer(&mut self, tracer: qoserve_trace::Tracer) {
        self.0.set_tracer(tracer)
    }
    fn pending_prefills(&self) -> usize {
        self.0.pending_prefills()
    }
    fn pending_prefill_tokens(&self) -> u64 {
        self.0.pending_prefill_tokens()
    }
    fn drain_pending(&mut self) -> Vec<qoserve_sched::PrefillJob> {
        self.0.drain_pending()
    }
    fn drain_rejected(&mut self) -> Vec<qoserve_sched::PrefillJob> {
        self.0.drain_rejected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_each_variant() {
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let seeds = SeedStream::new(1);
        assert_eq!(
            SchedulerSpec::sarathi_fcfs().build(&hw, &seeds).name(),
            "Sarathi-FCFS"
        );
        assert_eq!(
            SchedulerSpec::qoserve().build(&hw, &seeds).name(),
            "QoServe"
        );
        let medha = SchedulerSpec::Medha {
            config: MedhaConfig::default(),
            predictor: PredictorKind::Analytical,
        };
        assert_eq!(medha.build(&hw, &seeds).name(), "Medha");
    }

    #[test]
    fn labels_match_builds() {
        assert_eq!(SchedulerSpec::sarathi_edf().label(), "Sarathi-EDF");
        assert_eq!(SchedulerSpec::sarathi_srpf().label(), "Sarathi-SRPF");
        assert_eq!(SchedulerSpec::qoserve().label(), "QoServe");
    }

    #[test]
    fn builds_adaptive_and_deadline_aware() {
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let seeds = SeedStream::new(3);
        assert_eq!(
            SchedulerSpec::qoserve_adaptive().build(&hw, &seeds).name(),
            "QoServe"
        );
        let gated = SchedulerSpec::deadline_aware(SchedulerSpec::qoserve_adaptive());
        assert_eq!(gated.label(), "DeadlineAware(QoServe)");
        assert_eq!(gated.build(&hw, &seeds).name(), "DeadlineAware(QoServe)");
    }

    #[test]
    fn builds_slos_serve_and_rate_limited() {
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let seeds = SeedStream::new(2);
        let slos = SchedulerSpec::SlosServe {
            config: SlosServeConfig::default(),
        };
        assert_eq!(slos.build(&hw, &seeds).name(), "SLOs-Serve");
        let limited = SchedulerSpec::RateLimited {
            inner: Box::new(SchedulerSpec::sarathi_fcfs()),
            max_backlog_tokens: 10_000,
        };
        assert_eq!(limited.label(), "RateLimited(Sarathi-FCFS)");
        assert_eq!(
            limited.build(&hw, &seeds).name(),
            "RateLimited(Sarathi-FCFS)"
        );
    }
}
