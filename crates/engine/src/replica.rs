//! The replica engine: one simulated serving instance.
//!
//! The engine advances in *iterations*, exactly like a chunked-prefill
//! serving loop (§3.1): each iteration batches every in-flight decode with
//! the prefill chunks the scheduler selected, executes the batch against
//! the calibrated latency model (plus noise), and moves simulated time
//! forward by the observed latency. Requests flow prefill queue → decode
//! pool → completion; the KV cache bounds admission.

use std::collections::{BTreeMap, HashMap, HashSet};

use qoserve_metrics::RequestOutcome;
use qoserve_perf::{BatchProfile, HardwareConfig, LatencyModel, PrefillChunkProfile};
use qoserve_sched::{Constraints, DecodeJob, PrefillJob, Scheduler};
use qoserve_sim::time::SignedDuration;
use qoserve_sim::{EventQueue, SeedStream, SimDuration, SimTime};
use qoserve_workload::{RequestId, RequestSpec, Trace};

use crate::kv::KvCache;
use crate::noise::ExecutionNoise;

/// Configuration of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Model/GPU/parallelism served by this replica.
    pub hardware: HardwareConfig,
    /// Maximum concurrent decoding requests (vLLM's `max_num_seqs`);
    /// prefill admission pauses when the pool is full.
    pub max_decode_batch: usize,
    /// Relative execution-noise sigma (0 disables noise).
    pub noise_sigma: f64,
    /// Replica identity recorded into outcomes.
    pub replica_id: u32,
    /// Optional simulated-time cutoff: the run stops here and everything
    /// unfinished is recorded as violated.
    pub horizon: Option<SimTime>,
    /// Record per-batch diagnostics (chunk budgets, latencies) — Fig. 9
    /// and Fig. 15a read these.
    pub record_batches: bool,
}

impl ReplicaConfig {
    /// Defaults for `hardware`: TBT-sustainable decode pool (see
    /// [`sustainable_decode_batch`]), 2 % noise, no horizon, no batch
    /// recording.
    pub fn new(hardware: HardwareConfig) -> Self {
        let max_decode_batch = sustainable_decode_batch(&hardware);
        ReplicaConfig {
            hardware,
            max_decode_batch,
            noise_sigma: 0.02,
            replica_id: 0,
            horizon: None,
            record_batches: false,
        }
    }

    /// Sets the replica id.
    pub fn with_replica_id(mut self, id: u32) -> Self {
        self.replica_id = id;
        self
    }

    /// Sets the simulated-time cutoff.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables per-batch diagnostics.
    pub fn with_batch_recording(mut self) -> Self {
        self.record_batches = true;
        self
    }
}

/// The default decode-pool cap for a hardware configuration: the largest
/// pool whose *decode-only* iteration stays within a 40 ms budget at a
/// representative 2.5 k-token context per request.
///
/// This is the simulator's analogue of tuning vLLM's `max_num_seqs` per
/// model: a pool so deep that even a decode-only iteration exceeds the
/// strictest TBT makes the 50 ms tier physically unservable no matter what
/// the scheduler does — MHA models (4x the KV traffic of GQA) need a much
/// shallower pool than GQA models.
pub fn sustainable_decode_batch(hw: &HardwareConfig) -> usize {
    const BUDGET_MS: f64 = 40.0;
    const CTX_PER_DECODE: u64 = 2_500;
    let model = LatencyModel::new(hw);
    let fits = |n: u64| {
        let batch = BatchProfile::builder()
            .decodes(n as u32, n * CTX_PER_DECODE)
            .build();
        model.iteration_time_us(&batch) / 1e3 <= BUDGET_MS
    };
    let (mut lo, mut hi) = (8u64, 256u64);
    if !fits(lo) {
        return lo as usize;
    }
    if fits(hi) {
        return hi as usize;
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as usize
}

/// Per-batch diagnostic record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRecord {
    /// Iteration start time.
    pub start: SimTime,
    /// Observed execution latency.
    pub exec: SimDuration,
    /// The scheduler's token budget for this batch (the dynamic chunk
    /// size in QoServe).
    pub token_budget: u32,
    /// Prefill tokens actually scheduled.
    pub prefill_tokens: u32,
    /// Decode-pool size during the batch.
    pub num_decodes: u32,
}

/// Runtime state of one admitted request.
#[derive(Debug, Clone)]
struct Running {
    spec: RequestSpec,
    prefill_done: u32,
    generated: u32,
    first_token: Option<SimTime>,
    last_token: SimTime,
    max_tbt: SimDuration,
    worst_lateness_us: i64,
    relegated: bool,
}

impl Running {
    fn new(spec: RequestSpec) -> Self {
        Running {
            spec,
            prefill_done: 0,
            generated: 0,
            first_token: None,
            last_token: SimTime::ZERO,
            max_tbt: SimDuration::ZERO,
            worst_lateness_us: i64::MIN,
            relegated: false,
        }
    }

    /// Records the emission of the next output token at `at`.
    fn emit_token(&mut self, at: SimTime) {
        self.generated += 1;
        if self.generated == 1 {
            self.first_token = Some(at);
        } else {
            let gap = at.duration_since(self.last_token);
            self.max_tbt = self.max_tbt.max(gap);
        }
        let deadline = self.spec.token_deadline(self.generated);
        let lateness = at.signed_duration_since(deadline).as_micros();
        self.worst_lateness_us = self.worst_lateness_us.max(lateness);
        self.last_token = at;
    }

    fn is_done(&self) -> bool {
        self.generated >= self.spec.decode_tokens.max(1)
    }

    fn into_outcome(self, replica: u32) -> RequestOutcome {
        RequestOutcome {
            spec: self.spec,
            first_token: self.first_token,
            completion: Some(self.last_token),
            max_tbt: self.max_tbt,
            worst_token_lateness: SignedDuration::from_micros(self.worst_lateness_us),
            relegated: self.relegated,
            replica,
        }
    }
}

/// One simulated serving replica.
///
/// # Example
///
/// ```
/// use qoserve_engine::{ReplicaConfig, ReplicaEngine};
/// use qoserve_perf::{HardwareConfig, LatencyPredictor};
/// use qoserve_sched::{QoServeConfig, QoServeScheduler};
/// use qoserve_sim::SeedStream;
/// use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};
///
/// let hw = HardwareConfig::llama3_8b_a100_tp1();
/// let seeds = SeedStream::new(1);
/// let sched = QoServeScheduler::new(
///     QoServeConfig::default(),
///     LatencyPredictor::analytical(&hw),
/// );
/// let mut engine = ReplicaEngine::new(ReplicaConfig::new(hw), Box::new(sched), &seeds);
/// let trace = TraceBuilder::new(Dataset::azure_conv())
///     .arrivals(ArrivalProcess::poisson(2.0))
///     .num_requests(20)
///     .build(&seeds);
/// let outcomes = engine.run_trace(&trace);
/// assert_eq!(outcomes.len(), 20);
/// ```
pub struct ReplicaEngine {
    config: ReplicaConfig,
    model: LatencyModel,
    noise: ExecutionNoise,
    scheduler: Box<dyn Scheduler>,
    arrivals: EventQueue<RequestSpec>,
    /// Specs of every request that has arrived (engine-side copy; the
    /// scheduler owns the live prefill job until completion).
    known_specs: HashMap<RequestId, RequestSpec>,
    /// In-flight requests. Ordered map, not `HashMap`:
    /// `finalize_unfinished` drains it into the outcome list, and that
    /// walk order must be a function of request ids alone for replays to
    /// be bit-identical (`known_specs` above is point-lookup only, so it
    /// may stay hashed).
    running: BTreeMap<RequestId, Running>,
    decode_pool: Vec<RequestId>,
    kv: KvCache,
    now: SimTime,
    outcomes: Vec<RequestOutcome>,
    iterations: u64,
    batch_log: Vec<BatchRecord>,
    /// Consecutive iterations that made no progress (deadlock guard).
    stall_streak: u32,
}

impl ReplicaEngine {
    /// Builds an engine around a scheduler.
    pub fn new(config: ReplicaConfig, scheduler: Box<dyn Scheduler>, seeds: &SeedStream) -> Self {
        let model = LatencyModel::new(&config.hardware);
        let kv = KvCache::new(config.hardware.kv_token_capacity());
        let noise = ExecutionNoise::new(seeds, config.replica_id, config.noise_sigma);
        ReplicaEngine {
            config,
            model,
            noise,
            scheduler,
            arrivals: EventQueue::new(),
            known_specs: HashMap::new(),
            running: BTreeMap::new(),
            decode_pool: Vec::new(),
            kv,
            now: SimTime::ZERO,
            outcomes: Vec::new(),
            iterations: 0,
            batch_log: Vec::new(),
            stall_streak: 0,
        }
    }

    /// Queues a request for arrival at `spec.arrival`.
    pub fn submit(&mut self, spec: RequestSpec) {
        self.arrivals.push(spec.arrival, spec);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Recorded batch diagnostics (empty unless enabled in the config).
    pub fn batch_log(&self) -> &[BatchRecord] {
        &self.batch_log
    }

    /// Submits every request of `trace` and runs to completion.
    pub fn run_trace(&mut self, trace: &Trace) -> Vec<RequestOutcome> {
        for spec in trace {
            self.submit(*spec);
        }
        self.run()
    }

    /// Runs until all submitted work completes (or the horizon / deadlock
    /// guard fires), returning one outcome per submitted request, ordered
    /// by request id.
    pub fn run(&mut self) -> Vec<RequestOutcome> {
        while self.step() {}
        self.finalize_unfinished();
        let mut outcomes = std::mem::take(&mut self.outcomes);
        outcomes.sort_by_key(|o| o.spec.id);
        outcomes
    }

    /// Executes one engine step. Returns `false` when no work remains (or
    /// the horizon was reached).
    pub fn step(&mut self) -> bool {
        if let Some(h) = self.config.horizon {
            if self.now >= h {
                return false;
            }
        }
        // Safety net: a scheduler bug that never makes progress would
        // otherwise spin forever.
        if self.stall_streak > 10_000 {
            return false;
        }

        // 1. Deliver due arrivals.
        while let Some((_, spec)) = self.arrivals.pop_due(self.now) {
            self.known_specs.insert(spec.id, spec);
            self.scheduler.on_arrival(PrefillJob::new(spec), self.now);
        }

        // 2. Snapshot the decode pool.
        let decodes: Vec<DecodeJob> = self
            .decode_pool
            .iter()
            .map(|id| {
                let r = &self.running[id];
                DecodeJob {
                    id: *id,
                    context_len: r.prefill_done + r.generated,
                    next_token_deadline: r.spec.token_deadline(r.generated + 1),
                    relegated: r.relegated,
                }
            })
            .collect();

        // 3. Ask the scheduler for the prefill side.
        let total_running = self.running.len();
        let constraints = Constraints {
            kv_headroom_tokens: self.kv.headroom(),
            allow_prefill: total_running < self.config.max_decode_batch,
            max_new_requests: self.config.max_decode_batch.saturating_sub(total_running),
        };
        let plan = self.scheduler.plan_batch(self.now, &decodes, constraints);

        // 4. Idle handling: nothing runnable this instant.
        if plan.is_empty() && decodes.is_empty() {
            if let Some(next) = self.arrivals.peek_time() {
                // Jump to the next arrival.
                self.now = self.now.max(next);
                self.stall_streak = 0;
                return true;
            }
            if self.scheduler.pending_prefills() > 0 {
                // Queued work that cannot be scheduled right now (e.g. KV
                // exhausted); nudge time forward and retry.
                self.now += SimDuration::from_millis(10);
                self.stall_streak += 1;
                return true;
            }
            return false; // fully drained
        }
        self.stall_streak = 0;

        // 5. Execute the mixed batch.
        let mut profile = BatchProfile::default();
        for a in &plan.prefill {
            profile
                .prefill
                .push(PrefillChunkProfile::new(a.tokens, a.context_before));
        }
        profile.num_decodes = decodes.len() as u32;
        profile.decode_context_total = decodes.iter().map(|d| d.context_len as u64).sum();

        let exec = self.noise.apply(self.model.iteration_time(&profile));
        self.now += exec;
        self.iterations += 1;
        if self.config.record_batches {
            self.batch_log.push(BatchRecord {
                start: self.now - exec,
                exec,
                token_budget: plan.token_budget,
                prefill_tokens: plan.prefill_tokens(),
                num_decodes: decodes.len() as u32,
            });
        }

        // 6. Decode side: each pooled request emits one token.
        let mut finished: Vec<RequestId> = Vec::new();
        for d in &decodes {
            let Some(r) = self.running.get_mut(&d.id) else {
                // Scheduler/engine contract breach: loud in debug builds
                // (where the test suite runs), a defensive skip in release.
                if cfg!(debug_assertions) {
                    unreachable!("decode {} is not running", d.id);
                }
                continue;
            };
            r.emit_token(self.now);
            self.kv.write_decode(d.id);
            if r.is_done() {
                finished.push(d.id);
            }
        }
        for id in finished {
            self.complete(id);
        }

        // 7. Prefill side: apply progress; completions emit their first
        // token and join the decode pool.
        for a in &plan.prefill {
            if !self.running.contains_key(&a.id) {
                // Fresh admission: reserve the decode growth up front so
                // the pooled decode can never be evicted (§3.4: decodes
                // are not preempted).
                let Some(&spec) = self.known_specs.get(&a.id) else {
                    if cfg!(debug_assertions) {
                        unreachable!("scheduler planned unknown request {}", a.id);
                    }
                    continue;
                };
                self.kv
                    .admit(a.id, spec.decode_tokens.saturating_sub(1) as u64);
                self.running.insert(a.id, Running::new(spec));
            }
            // Present unless the unknown-request guard above skipped the
            // admission for this assignment.
            let Some(entry) = self.running.get_mut(&a.id) else {
                continue;
            };
            entry.prefill_done += a.tokens;
            entry.relegated |= a.relegated;
            self.kv.write_prefill(a.id, a.tokens as u64);
            if a.completes_prefill {
                entry.emit_token(self.now);
                if entry.is_done() {
                    self.complete(a.id);
                } else {
                    self.decode_pool.push(a.id);
                }
            }
        }

        true
    }

    fn complete(&mut self, id: RequestId) {
        let Some(r) = self.running.remove(&id) else {
            if cfg!(debug_assertions) {
                unreachable!("completing unknown request {id}");
            }
            return;
        };
        self.decode_pool.retain(|d| *d != id);
        self.kv.release(id);
        self.scheduler.on_completion(&r.spec, r.generated);
        self.outcomes.push(r.into_outcome(self.config.replica_id));
    }

    /// Marks everything still in flight/queued/unarrived as unfinished.
    fn finalize_unfinished(&mut self) {
        let replica = self.config.replica_id;
        let mut accounted: std::collections::HashSet<RequestId> = HashSet::new();
        for (id, r) in std::mem::take(&mut self.running) {
            accounted.insert(id);
            self.outcomes
                .push(RequestOutcome::unfinished(r.spec, r.relegated, replica));
        }
        self.decode_pool.clear();
        for job in self.scheduler.drain_pending() {
            // Skip jobs that are also in `running` (partially prefilled) —
            // those were already accounted above.
            if accounted.insert(job.spec.id) {
                self.outcomes
                    .push(RequestOutcome::unfinished(job.spec, job.relegated, replica));
            }
        }
        while let Some((_, spec)) = self.arrivals.pop() {
            self.outcomes
                .push(RequestOutcome::unfinished(spec, false, replica));
        }
        self.known_specs.clear();
    }
}
