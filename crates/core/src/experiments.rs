//! Shared harness for the paper's experiments.
//!
//! Every `fig*`/`table*` binary in `qoserve-bench` drives its sweep
//! through these helpers so that scheme lists, trace construction, and
//! scaling all live in one place.
//!
//! ## Scaling
//!
//! The paper's runs take hours of traffic (4 h windows, 360 K requests).
//! The simulator replays them faithfully but the experiment binaries
//! default to a compressed window that preserves the trends (as the
//! artifact's `*_tiny.sh` scripts do). Set `QOSERVE_SCALE` to stretch it:
//! `QOSERVE_SCALE=1` is the fast default, `QOSERVE_SCALE=16` approaches
//! paper-scale windows.

use qoserve_cluster::{
    generate_scale_schedule, run_shared, run_shared_elastic, run_shared_faulty, BreakerConfig,
    ClusterConfig, ElasticPlan, FaultPlan, FaultRunStats, LifecycleConfig, ScaleChurnConfig,
    SchedulerSpec,
};
use qoserve_metrics::{RecoveryReport, RequestOutcome, SloReport};
use qoserve_perf::HardwareConfig;
use qoserve_sim::{par_map, SeedStream, SimDuration};
use qoserve_workload::{ArrivalProcess, Dataset, TierMix, Trace, TraceBuilder};

/// Reads the experiment scale factor from `QOSERVE_SCALE` (default 1.0,
/// clamped to `[0.05, 64]`).
pub fn scale_factor() -> f64 {
    std::env::var("QOSERVE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 64.0)
}

/// A measurement window of `base_secs`, scaled by [`scale_factor`].
pub fn scaled_window(base_secs: u64) -> SimDuration {
    SimDuration::from_secs_f64(base_secs as f64 * scale_factor())
}

/// The four shared-cluster schemes of Figures 10–11, in plot order.
pub fn shared_cluster_schemes() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_srpf(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ]
}

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scheme label.
    pub scheme: String,
    /// Offered load in QPS.
    pub qps: f64,
    /// Violation/latency report of the run.
    pub report: SloReport,
    /// Raw outcomes (for custom breakdowns).
    pub outcomes: Vec<RequestOutcome>,
}

/// Runs every `(scheme, qps)` combination on a single shared replica over
/// the same per-QPS trace and returns the reports. Traces are rebuilt per
/// QPS (same seed) so schemes see identical workloads.
///
/// The grid cells are independent seeded simulations, so they run on
/// [`par_map`] worker threads (`QOSERVE_THREADS` controls how many).
/// Every cell reconstructs its randomness from `(seed, qps, scheme)`
/// alone, so the output is **bit-identical** to [`load_sweep_serial`] for
/// any thread count — a property `tests/` enforces.
pub fn load_sweep(
    dataset: &Dataset,
    hardware: &HardwareConfig,
    schemes: &[SchedulerSpec],
    qps_list: &[f64],
    window: SimDuration,
    mix: &TierMix,
    seed: u64,
) -> Vec<SweepPoint> {
    // Stage 1: build the per-QPS traces concurrently (each derives purely
    // from (dataset, qps, seed)).
    let traces: Vec<(f64, u32, Trace)> = par_map(qps_list.to_vec(), |_, qps| {
        let trace = TraceBuilder::new(dataset.clone())
            .arrivals(ArrivalProcess::poisson(qps))
            .duration(window)
            .tier_mix(mix.clone())
            .build(&SeedStream::new(seed));
        let threshold = trace.long_prompt_threshold();
        (qps, threshold, trace)
    });

    // Stage 2: simulate every grid cell concurrently, in the same
    // qps-major / scheme-minor order the serial loop produced.
    let grid: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|qi| (0..schemes.len()).map(move |si| (qi, si)))
        .collect();
    par_map(grid, |_, (qi, si)| {
        let (qps, threshold, trace) = &traces[qi];
        let scheme = &schemes[si];
        let outcomes = run_run(trace, scheme, hardware, seed);
        let report = SloReport::compute(&outcomes, *threshold);
        SweepPoint {
            scheme: scheme.label(),
            qps: *qps,
            report,
            outcomes,
        }
    })
}

/// The original single-threaded sweep loop, kept as the reference
/// implementation that [`load_sweep`] must match bit-for-bit.
pub fn load_sweep_serial(
    dataset: &Dataset,
    hardware: &HardwareConfig,
    schemes: &[SchedulerSpec],
    qps_list: &[f64],
    window: SimDuration,
    mix: &TierMix,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &qps in qps_list {
        let trace = TraceBuilder::new(dataset.clone())
            .arrivals(ArrivalProcess::poisson(qps))
            .duration(window)
            .tier_mix(mix.clone())
            .build(&SeedStream::new(seed));
        let threshold = trace.long_prompt_threshold();
        for scheme in schemes {
            let outcomes = run_run(&trace, scheme, hardware, seed);
            let report = SloReport::compute(&outcomes, threshold);
            points.push(SweepPoint {
                scheme: scheme.label(),
                qps,
                report,
                outcomes,
            });
        }
    }
    points
}

/// Fixed workload/cluster setup of a fault sweep: the sweep varies fault
/// intensity and scheme, everything else stays pinned here.
#[derive(Debug, Clone)]
pub struct FaultSweepSetup {
    /// Request length distributions.
    pub dataset: Dataset,
    /// Hardware of every replica.
    pub hardware: HardwareConfig,
    /// Replica count of the shared deployment.
    pub replicas: u32,
    /// Offered load in QPS.
    pub qps: f64,
    /// Trace duration.
    pub window: SimDuration,
    /// Tier mix.
    pub mix: TierMix,
    /// Fraction of requests marked [`Priority::Low`] — the traffic the
    /// recovery loop's tier-aware shedding is allowed to drop.
    ///
    /// [`Priority::Low`]: qoserve_workload::Priority::Low
    pub low_priority_fraction: f64,
    /// Base fault plan; each sweep point scales its rates by the point's
    /// intensity ([`FaultPlan::scaled`]).
    pub plan: FaultPlan,
    /// Root seed for trace, faults, and execution noise.
    pub seed: u64,
}

/// One point of a fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// Scheme label.
    pub scheme: String,
    /// Fault-rate multiplier applied to the base plan.
    pub intensity: f64,
    /// Violation/latency report of the run.
    pub report: SloReport,
    /// Per-tier recovery accounting.
    pub recovery: RecoveryReport,
    /// Aggregate crash/retry/shed counters.
    pub stats: FaultRunStats,
    /// Raw outcomes (for custom breakdowns).
    pub outcomes: Vec<RequestOutcome>,
}

/// Runs every `(intensity, scheme)` combination of a fault sweep on the
/// same trace and returns the reports, intensity-major / scheme-minor.
///
/// Like [`load_sweep`], the grid cells are independent seeded simulations
/// running on [`par_map`] worker threads, each reconstructing its
/// randomness from `(setup.seed, intensity, scheme)` alone — the output
/// is **bit-identical** to [`fault_sweep_serial`] for any thread count.
pub fn fault_sweep(
    setup: &FaultSweepSetup,
    schemes: &[SchedulerSpec],
    intensities: &[f64],
) -> Vec<FaultSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(setup);
    let grid: Vec<(usize, usize)> = (0..intensities.len())
        .flat_map(|ii| (0..schemes.len()).map(move |si| (ii, si)))
        .collect();
    par_map(grid, |_, (ii, si)| {
        fault_sweep_cell(setup, &trace, threshold, intensities[ii], &schemes[si])
    })
}

/// The single-threaded fault sweep, kept as the reference implementation
/// that [`fault_sweep`] must match bit-for-bit.
pub fn fault_sweep_serial(
    setup: &FaultSweepSetup,
    schemes: &[SchedulerSpec],
    intensities: &[f64],
) -> Vec<FaultSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(setup);
    let mut points = Vec::new();
    for &intensity in intensities {
        for scheme in schemes {
            points.push(fault_sweep_cell(
                setup, &trace, threshold, intensity, scheme,
            ));
        }
    }
    points
}

fn fault_sweep_trace(setup: &FaultSweepSetup) -> (Trace, u32) {
    let trace = TraceBuilder::new(setup.dataset.clone())
        .arrivals(ArrivalProcess::poisson(setup.qps))
        .duration(setup.window)
        .tier_mix(setup.mix.clone())
        .low_priority_fraction(setup.low_priority_fraction)
        .build(&SeedStream::new(setup.seed));
    let threshold = trace.long_prompt_threshold();
    (trace, threshold)
}

fn fault_sweep_cell(
    setup: &FaultSweepSetup,
    trace: &Trace,
    threshold: u32,
    intensity: f64,
    scheme: &SchedulerSpec,
) -> FaultSweepPoint {
    let config = ClusterConfig::new(setup.hardware.clone());
    let plan = setup.plan.scaled(intensity);
    // The only error is a zero-replica deployment; report it as an empty
    // run rather than poisoning the whole sweep.
    let result = run_shared_faulty(
        trace,
        setup.replicas,
        scheme,
        &config,
        &plan,
        &SeedStream::new(setup.seed),
    )
    .unwrap_or_default();
    let report = SloReport::compute(&result.outcomes, threshold);
    let recovery = RecoveryReport::compute(&result.outcomes);
    FaultSweepPoint {
        scheme: scheme.label(),
        intensity,
        report,
        recovery,
        stats: result.stats,
        outcomes: result.outcomes,
    }
}

/// Fixed setup of a chaos sweep: the fault-sweep setup plus the elastic
/// control plane's churn process and lifecycle timing. The sweep varies
/// fault intensity with a seed-derived scale-event schedule running
/// alongside — crashes, stragglers, and membership changes compose.
#[derive(Debug, Clone)]
pub struct ChaosSweepSetup {
    /// Workload, fleet, and fault-plan configuration.
    pub base: FaultSweepSetup,
    /// Scale-churn process generating the Add/Drain schedule.
    pub churn: ScaleChurnConfig,
    /// Replica lifecycle timing (provision, warm-up, drain grace).
    pub lifecycle: LifecycleConfig,
    /// Slot ceiling the fleet may grow to.
    pub max_replicas: u32,
}

/// One point of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweepPoint {
    /// Scheme label.
    pub scheme: String,
    /// Fault-rate multiplier applied to the base plan.
    pub intensity: f64,
    /// Violation/latency report of the run.
    pub report: SloReport,
    /// Per-tier recovery accounting.
    pub recovery: RecoveryReport,
    /// Aggregate crash/retry/shed/scale counters.
    pub stats: FaultRunStats,
    /// Provisioned replica-microseconds over the run.
    pub replica_us: u64,
    /// Scale events the churn schedule drew.
    pub scale_events: usize,
    /// Raw outcomes (for custom breakdowns).
    pub outcomes: Vec<RequestOutcome>,
}

/// Runs every `(intensity, scheme)` combination of a chaos sweep —
/// faults *and* seed-derived scale churn on the elastic runner —
/// intensity-major / scheme-minor. Grid cells are independent seeded
/// simulations on [`par_map`] threads, bit-identical to
/// [`chaos_sweep_serial`] at any thread count.
pub fn chaos_sweep(
    setup: &ChaosSweepSetup,
    schemes: &[SchedulerSpec],
    intensities: &[f64],
) -> Vec<ChaosSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(&setup.base);
    let grid: Vec<(usize, usize)> = (0..intensities.len())
        .flat_map(|ii| (0..schemes.len()).map(move |si| (ii, si)))
        .collect();
    par_map(grid, |_, (ii, si)| {
        chaos_cell(setup, &trace, threshold, intensities[ii], &schemes[si])
    })
}

/// The single-threaded chaos sweep, kept as the reference implementation
/// that [`chaos_sweep`] must match bit-for-bit.
pub fn chaos_sweep_serial(
    setup: &ChaosSweepSetup,
    schemes: &[SchedulerSpec],
    intensities: &[f64],
) -> Vec<ChaosSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(&setup.base);
    let mut points = Vec::new();
    for &intensity in intensities {
        for scheme in schemes {
            points.push(chaos_cell(setup, &trace, threshold, intensity, scheme));
        }
    }
    points
}

fn chaos_cell(
    setup: &ChaosSweepSetup,
    trace: &Trace,
    threshold: u32,
    intensity: f64,
    scheme: &SchedulerSpec,
) -> ChaosSweepPoint {
    let config = ClusterConfig::new(setup.base.hardware.clone());
    let plan = setup.base.plan.scaled(intensity);
    let seeds = SeedStream::new(setup.base.seed);
    // The schedule derives from its own label ("scale-churn") of the same
    // root stream the runner uses, so every cell rebuilds it identically.
    let schedule = generate_scale_schedule(&setup.churn, setup.base.window, &seeds);
    let scale_events = schedule.len();
    let elastic = ElasticPlan {
        lifecycle: setup.lifecycle,
        max_replicas: setup.max_replicas,
        schedule,
        autoscale: None,
    };
    let result = run_shared_elastic(
        trace,
        setup.base.replicas,
        scheme,
        &config,
        &plan,
        &elastic,
        &seeds,
    )
    .unwrap_or_default();
    let report = SloReport::compute(&result.outcomes, threshold);
    let recovery = RecoveryReport::compute(&result.outcomes);
    ChaosSweepPoint {
        scheme: scheme.label(),
        intensity,
        report,
        recovery,
        stats: result.stats,
        replica_us: result.replica_us,
        scale_events,
        outcomes: result.outcomes,
    }
}

/// One end-to-end serving pipeline of the resilience sweep: a scheduler
/// spec (which may carry adaptive margins and an admission gate) plus
/// whether the recovery loop runs per-replica circuit breakers.
#[derive(Debug, Clone)]
pub struct ResiliencePipeline {
    /// Label the sweep point is reported under (e.g. `"static"`).
    pub label: String,
    /// The per-replica scheduler.
    pub scheme: SchedulerSpec,
    /// Circuit-breaker configuration for health-aware re-dispatch, if
    /// enabled.
    pub breaker: Option<BreakerConfig>,
}

/// The two pipelines the `resilience_sweep` binary compares: today's
/// static-margin QoServe, and the full adaptive resilience layer
/// (online margin + SLO-aware admission + circuit breakers).
pub fn resilience_pipelines() -> Vec<ResiliencePipeline> {
    vec![
        ResiliencePipeline {
            label: "static".to_owned(),
            scheme: SchedulerSpec::qoserve(),
            breaker: None,
        },
        ResiliencePipeline {
            label: "adaptive".to_owned(),
            scheme: SchedulerSpec::deadline_aware(SchedulerSpec::qoserve_adaptive()),
            breaker: Some(BreakerConfig::default()),
        },
    ]
}

/// Runs every `(intensity, pipeline)` combination on the same trace,
/// intensity-major / pipeline-minor. Reuses the fault-sweep point shape
/// ([`FaultSweepPoint`]) with the pipeline label as the scheme.
///
/// Grid cells are independent seeded simulations on [`par_map`] threads,
/// each reconstructing its randomness from `(setup.seed, intensity,
/// pipeline)` alone — the output is **bit-identical** to
/// [`resilience_sweep_serial`] for any thread count.
pub fn resilience_sweep(
    setup: &FaultSweepSetup,
    pipelines: &[ResiliencePipeline],
    intensities: &[f64],
) -> Vec<FaultSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(setup);
    let grid: Vec<(usize, usize)> = (0..intensities.len())
        .flat_map(|ii| (0..pipelines.len()).map(move |pi| (ii, pi)))
        .collect();
    par_map(grid, |_, (ii, pi)| {
        resilience_cell(setup, &trace, threshold, intensities[ii], &pipelines[pi])
    })
}

/// The single-threaded resilience sweep, kept as the reference
/// implementation that [`resilience_sweep`] must match bit-for-bit.
pub fn resilience_sweep_serial(
    setup: &FaultSweepSetup,
    pipelines: &[ResiliencePipeline],
    intensities: &[f64],
) -> Vec<FaultSweepPoint> {
    let (trace, threshold) = fault_sweep_trace(setup);
    let mut points = Vec::new();
    for &intensity in intensities {
        for pipeline in pipelines {
            points.push(resilience_cell(
                setup, &trace, threshold, intensity, pipeline,
            ));
        }
    }
    points
}

fn resilience_cell(
    setup: &FaultSweepSetup,
    trace: &Trace,
    threshold: u32,
    intensity: f64,
    pipeline: &ResiliencePipeline,
) -> FaultSweepPoint {
    let config = ClusterConfig::new(setup.hardware.clone());
    let mut plan = setup.plan.scaled(intensity);
    if let Some(breaker) = pipeline.breaker {
        plan = plan.with_breaker(breaker);
    }
    let result = run_shared_faulty(
        trace,
        setup.replicas,
        &pipeline.scheme,
        &config,
        &plan,
        &SeedStream::new(setup.seed),
    )
    .unwrap_or_default();
    let report = SloReport::compute(&result.outcomes, threshold);
    let recovery = RecoveryReport::compute(&result.outcomes);
    FaultSweepPoint {
        scheme: pipeline.label.clone(),
        intensity,
        report,
        recovery,
        stats: result.stats,
        outcomes: result.outcomes,
    }
}

/// Runs one trace on one shared replica of `hardware` under `scheme`.
pub fn run_run(
    trace: &Trace,
    scheme: &SchedulerSpec,
    hardware: &HardwareConfig,
    seed: u64,
) -> Vec<RequestOutcome> {
    let config = ClusterConfig::new(hardware.clone());
    run_shared(trace, 1, scheme, &config, &SeedStream::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::TierId;

    #[test]
    fn scale_factor_defaults_to_one() {
        // The test environment does not set QOSERVE_SCALE.
        if std::env::var("QOSERVE_SCALE").is_err() {
            assert_eq!(scale_factor(), 1.0);
            assert_eq!(scaled_window(100), SimDuration::from_secs(100));
        }
    }

    #[test]
    fn scheme_list_matches_paper_plots() {
        let labels: Vec<String> = shared_cluster_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Sarathi-FCFS", "Sarathi-SRPF", "Sarathi-EDF", "QoServe"]
        );
    }

    #[test]
    fn fault_sweep_grid_and_zero_intensity_baseline() {
        let setup = FaultSweepSetup {
            dataset: Dataset::azure_conv(),
            hardware: HardwareConfig::llama3_8b_a100_tp1(),
            replicas: 2,
            qps: 3.0,
            window: SimDuration::from_secs(40),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.2,
            plan: FaultPlan::with_faults(qoserve_sim::FaultConfig::moderate()),
            seed: 9,
        };
        let schemes = [SchedulerSpec::sarathi_fcfs(), SchedulerSpec::qoserve()];
        let points = fault_sweep(&setup, &schemes, &[0.0, 4.0]);
        assert_eq!(points.len(), 4);
        // Intensity-major, scheme-minor order.
        assert_eq!(points[0].intensity, 0.0);
        assert_eq!(points[0].scheme, "Sarathi-FCFS");
        assert_eq!(points[3].intensity, 4.0);
        assert_eq!(points[3].scheme, "QoServe");
        // Zero intensity means the fault machinery never fires.
        assert_eq!(points[0].stats, FaultRunStats::default());
        assert_eq!(points[1].stats, FaultRunStats::default());
        // Every cell accounts the full trace.
        let n = points[0].outcomes.len();
        assert!(n > 0);
        assert!(points.iter().all(|p| p.outcomes.len() == n));
    }

    #[test]
    fn chaos_sweep_with_zero_churn_matches_fault_sweep() {
        let base = FaultSweepSetup {
            dataset: Dataset::azure_conv(),
            hardware: HardwareConfig::llama3_8b_a100_tp1(),
            replicas: 2,
            qps: 3.0,
            window: SimDuration::from_secs(40),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.2,
            plan: FaultPlan::with_faults(qoserve_sim::FaultConfig::moderate().scaled(2.0)),
            seed: 9,
        };
        let schemes = [SchedulerSpec::qoserve()];
        let faulty = fault_sweep(&base, &schemes, &[1.0]);
        let setup = ChaosSweepSetup {
            base,
            churn: ScaleChurnConfig {
                events_per_hour: 0.0,
                max_events: 0,
            },
            lifecycle: LifecycleConfig::default(),
            max_replicas: 4,
        };
        let chaos = chaos_sweep(&setup, &schemes, &[1.0]);
        assert_eq!(chaos.len(), 1);
        assert_eq!(chaos[0].scale_events, 0);
        // Zero churn: the elastic runner degenerates to the fault path,
        // bit for bit, even with idle headroom slots.
        assert_eq!(chaos[0].outcomes, faulty[0].outcomes);
        assert_eq!(chaos[0].stats, faulty[0].stats);
        assert!(chaos[0].replica_us > 0);
    }

    #[test]
    fn chaos_sweep_with_churn_is_deterministic_and_conserves() {
        let setup = ChaosSweepSetup {
            base: FaultSweepSetup {
                dataset: Dataset::azure_conv(),
                hardware: HardwareConfig::llama3_8b_a100_tp1(),
                replicas: 2,
                qps: 4.0,
                window: SimDuration::from_secs(60),
                mix: TierMix::paper_equal(),
                low_priority_fraction: 0.2,
                plan: FaultPlan::with_faults(qoserve_sim::FaultConfig::moderate()),
                seed: 11,
            },
            churn: ScaleChurnConfig {
                events_per_hour: 240.0,
                max_events: 8,
            },
            lifecycle: LifecycleConfig {
                provision_delay: SimDuration::from_secs(2),
                warmup: SimDuration::from_secs(3),
                drain_grace: SimDuration::from_secs(5),
            },
            max_replicas: 4,
        };
        let schemes = [SchedulerSpec::qoserve()];
        let a = chaos_sweep(&setup, &schemes, &[0.0, 2.0]);
        let b = chaos_sweep_serial(&setup, &schemes, &[0.0, 2.0]);
        assert_eq!(a.len(), 2);
        assert!(a[0].scale_events > 0, "240/h over 60s should draw events");
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.outcomes, pb.outcomes, "parallel == serial");
            assert_eq!(pa.stats, pb.stats);
            assert_eq!(pa.replica_us, pb.replica_us);
        }
        // Every cell accounts the full trace despite the churn.
        let n = a[0].outcomes.len();
        assert!(n > 0);
        assert!(a.iter().all(|p| p.outcomes.len() == n));
    }

    #[test]
    fn resilience_sweep_grid_and_zero_intensity_parity() {
        let setup = FaultSweepSetup {
            dataset: Dataset::azure_conv(),
            hardware: HardwareConfig::llama3_8b_a100_tp1(),
            replicas: 2,
            qps: 3.0,
            window: SimDuration::from_secs(40),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.2,
            plan: FaultPlan::with_faults(qoserve_sim::FaultConfig::moderate()),
            seed: 9,
        };
        let pipelines = resilience_pipelines();
        let points = resilience_sweep(&setup, &pipelines, &[0.0]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].scheme, "static");
        assert_eq!(points[1].scheme, "adaptive");
        // At zero intensity the fault machinery never fires and the
        // adaptive layer observes only calm iterations: both pipelines
        // must serve the trace identically, bit for bit.
        assert_eq!(points[0].outcomes, points[1].outcomes);
        assert_eq!(points[1].stats, FaultRunStats::default());
    }

    #[test]
    fn sweep_produces_scheme_by_qps_grid() {
        let points = load_sweep(
            &Dataset::azure_conv(),
            &HardwareConfig::llama3_8b_a100_tp1(),
            &[SchedulerSpec::sarathi_fcfs(), SchedulerSpec::qoserve()],
            &[1.0, 2.0],
            SimDuration::from_secs(60),
            &TierMix::paper_equal(),
            7,
        );
        assert_eq!(points.len(), 4);
        // Same trace per QPS: totals agree across schemes.
        assert_eq!(points[0].report.total, points[1].report.total);
        // Per-tier data exists.
        assert!(points[0].report.by_tier.contains_key(&TierId::Q1));
    }
}
