//! Fixture: `src/bin/` drivers may print (and panic) freely.

fn main() {
    let value: Option<u32> = Some(1);
    println!("driver output: {}", value.unwrap());
    eprintln!("drivers own the process streams");
}
