//! Capacity planning: how many GPUs does a target load need?
//!
//! Uses the goodput search and the min-replica planner to answer the
//! deployment question behind the paper's Table 4 — first measuring
//! per-replica goodput for a siloed and a shared design, then sizing a
//! cluster for a 12-QPS three-tier workload.
//!
//! ```sh
//! cargo run --release -p qoserve-examples --bin capacity_planning
//! ```

use qoserve::prelude::*;

fn main() {
    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ClusterConfig::new(hw.clone());
    let options = GoodputOptions {
        window: SimDuration::from_secs(900),
        resolution: 0.25,
        ..Default::default()
    };
    let seeds = SeedStream::new(11);

    // Step 1: per-replica goodput of the two designs on the mixed
    // three-tier workload.
    println!("measuring per-replica goodput (Az-Conv, three tiers)...");
    let fcfs = max_goodput(
        &Dataset::azure_conv(),
        &SchedulerSpec::sarathi_fcfs(),
        &config,
        &options,
        &seeds,
    );
    let qoserve = max_goodput(
        &Dataset::azure_conv(),
        &SchedulerSpec::qoserve(),
        &config,
        &options,
        &seeds,
    );
    println!("  Sarathi-FCFS: {fcfs:.2} QPS/replica");
    println!("  QoServe:      {qoserve:.2} QPS/replica\n");

    // Step 2: size a cluster for 12 QPS with the planner (which accounts
    // for routing imbalance that a naive division would miss).
    let target_qps = 12.0;
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(target_qps))
        .duration(SimDuration::from_secs(900))
        .paper_tier_mix()
        .build(&seeds);

    println!(
        "planning for {target_qps} QPS ({} requests in the probe)...",
        trace.len()
    );
    let mut table = Table::new(vec!["design", "replicas needed", "naive estimate"]);
    for (label, spec, goodput) in [
        ("Sarathi-FCFS shared", SchedulerSpec::sarathi_fcfs(), fcfs),
        ("QoServe shared", SchedulerSpec::qoserve(), qoserve),
    ] {
        let planned = min_replicas_for(&trace, &spec, &config, 1.0, 24, &seeds)
            .map_or("> 24".to_owned(), |n| n.to_string());
        table.row(vec![
            label.to_owned(),
            planned,
            format!("{:.0}", (target_qps / goodput.max(1e-9)).ceil()),
        ]);
    }
    print!("{table}");
    println!("\nfewer replicas at identical SLOs is the paper's headline economics.");
}
