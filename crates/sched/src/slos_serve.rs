//! SLOs-Serve-style periodic dynamic-programming scheduling (§4.5.3).
//!
//! SLOs-Serve [Chen et al. 2025] re-plans periodically with a dynamic
//! program over *all* active and queued requests, maximising SLO
//! attainment; the paper's complexity comparison credits it with
//! `O(N · N_new · M)` scheduling cost against QoServe's `O(log N_new)`
//! priority-queue pop. This module implements a faithful simplification:
//!
//! * every `replan_every` iterations, a DP over the queued requests
//!   (sorted by deadline) and a discretised time horizon selects the
//!   subset of requests that can still meet their deadlines, maximising
//!   the number of attained SLOs (`dp[j][t] = max attained among the
//!   first j jobs using t time blocks` — the classic 1‖ΣU̅ⱼ DP);
//! * between re-plans, batches are filled in plan order with a fixed
//!   TBT-safe token budget; unplanned jobs ride along best-effort after
//!   the planned ones.
//!
//! The value of this module is two-fold: it reproduces the §4.5.3
//! overhead comparison in the Criterion benches (DP cost grows linearly+
//! with queue depth while QoServe's stays flat), and it provides an
//! optimisation-based reference point for the policy benchmarks.

use qoserve_sim::{SimDuration, SimTime};
use qoserve_workload::{RequestId, RequestSpec};

use crate::estimate::ProcessingEstimator;
use crate::job::{DecodeJob, PrefillJob};
use crate::{BatchPlan, Constraints, PrefillAssignment, Scheduler};

use qoserve_perf::LatencyPredictor;
use std::collections::BTreeMap;

/// Configuration of [`SlosServeScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlosServeConfig {
    /// Fixed per-iteration token budget (sized for the strictest TBT,
    /// like the Sarathi baselines).
    pub chunk: u32,
    /// Iterations between DP re-plans (SLOs-Serve re-plans periodically;
    /// 1 = every iteration, the most faithful and most expensive).
    pub replan_every: u32,
    /// Time-block granularity of the DP horizon.
    pub block: SimDuration,
    /// Maximum number of horizon blocks (bounds the DP's `M`).
    pub max_blocks: usize,
}

impl Default for SlosServeConfig {
    fn default() -> Self {
        SlosServeConfig {
            chunk: 256,
            replan_every: 1,
            block: SimDuration::from_millis(250),
            max_blocks: 4_096,
        }
    }
}

/// Periodic-DP scheduler modelling SLOs-Serve.
#[derive(Debug)]
pub struct SlosServeScheduler {
    config: SlosServeConfig,
    estimator: ProcessingEstimator,
    /// All queued jobs, keyed by id. Ordered map: `replan`, the pending-
    /// token sum, and `drain_pending` all walk it, and walk order must be
    /// deterministic for replays.
    jobs: BTreeMap<RequestId, PrefillJob>,
    /// Current plan: ids in service order (planned attainable first, then
    /// best-effort), rebuilt every `replan_every` iterations.
    plan_order: Vec<RequestId>,
    iterations_since_plan: u32,
    /// DP cell count of the last re-plan (complexity diagnostics).
    last_dp_cells: u64,
}

impl SlosServeScheduler {
    /// Creates the scheduler; the predictor seeds the service-time
    /// estimator exactly as QoServe's does.
    pub fn new(config: SlosServeConfig, predictor: LatencyPredictor) -> Self {
        SlosServeScheduler {
            config,
            estimator: ProcessingEstimator::from_predictor(&predictor),
            jobs: BTreeMap::new(),
            plan_order: Vec::new(),
            iterations_since_plan: u32::MAX, // force a plan on first batch
            last_dp_cells: 0,
        }
    }

    /// DP cells evaluated by the most recent re-plan (the `N · M` cost).
    pub fn last_dp_cells(&self) -> u64 {
        self.last_dp_cells
    }

    /// Runs the attainment-maximising DP and rebuilds `plan_order`.
    ///
    /// Jobs are sorted by deadline; `dp[t]` holds the maximum number of
    /// attainable jobs using `t` blocks of machine time, processed in
    /// deadline order (exchange argument: any attainable subset can be
    /// served in EDF order).
    fn replan(&mut self, now: SimTime) {
        let mut candidates: Vec<&PrefillJob> = self.jobs.values().collect();
        candidates.sort_by_key(|j| (j.urgency_deadline(), j.id()));

        let block_us = self.config.block.as_micros().max(1);
        let horizon_blocks = self.config.max_blocks;

        // dp[t] = (max attained, chosen set encoded via parent pointers).
        // To reconstruct the chosen set we keep, per job, the best t at
        // which it was taken.
        let mut dp = vec![0u32; horizon_blocks + 1];
        let mut taken: Vec<Vec<bool>> = Vec::with_capacity(candidates.len());
        let mut cells = 0u64;

        for job in &candidates {
            let service = self
                .estimator
                .prefill_time(job.remaining_tokens())
                .as_micros()
                .div_ceil(block_us)
                .max(1) as usize;
            let deadline_blocks = job
                .urgency_deadline()
                .signed_duration_since(now)
                .clamp_non_negative()
                .as_micros()
                / block_us;
            let deadline_blocks = (deadline_blocks as usize).min(horizon_blocks);

            let mut row = vec![false; horizon_blocks + 1];
            if service <= deadline_blocks {
                // 0/1 knapsack step, iterating t downward; a job taken at
                // finish time t must finish by its deadline.
                for t in (service..=deadline_blocks).rev() {
                    cells += 1;
                    if dp[t - service] + 1 > dp[t] {
                        dp[t] = dp[t - service] + 1;
                        row[t] = true;
                    }
                }
            }
            taken.push(row);
        }
        self.last_dp_cells = cells;

        // Reconstruct: walk jobs backwards from the best end block.
        let mut t = (0..=horizon_blocks).max_by_key(|&t| dp[t]).unwrap_or(0);
        let mut attained: Vec<RequestId> = Vec::new();
        let mut best_effort: Vec<RequestId> = Vec::new();
        for (idx, job) in candidates.iter().enumerate().rev() {
            let service = self
                .estimator
                .prefill_time(job.remaining_tokens())
                .as_micros()
                .div_ceil(block_us)
                .max(1) as usize;
            if t >= service && taken[idx][t] {
                attained.push(job.id());
                t -= service;
            } else {
                best_effort.push(job.id());
            }
        }
        // `attained` was collected in reverse deadline order; restore EDF
        // order. Best-effort jobs also serve in deadline order.
        attained.reverse();
        best_effort.reverse();
        self.plan_order = attained;
        self.plan_order.extend(best_effort);
        self.iterations_since_plan = 0;
    }
}

impl Scheduler for SlosServeScheduler {
    fn name(&self) -> &str {
        "SLOs-Serve"
    }

    fn on_arrival(&mut self, job: PrefillJob, _now: SimTime) {
        self.jobs.insert(job.id(), job);
        // New work invalidates the plan at the next batch boundary.
        self.iterations_since_plan = u32::MAX;
    }

    fn plan_batch(
        &mut self,
        now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        if self.iterations_since_plan >= self.config.replan_every {
            self.replan(now);
        }
        self.iterations_since_plan = self.iterations_since_plan.saturating_add(1);

        let budget = self.config.chunk.saturating_sub(decodes.len() as u32);
        let mut plan = BatchPlan {
            prefill: Vec::new(),
            token_budget: budget,
        };
        if !constraints.allow_prefill {
            return plan;
        }

        let mut remaining = budget;
        let mut kv_left = constraints.kv_headroom_tokens;
        let mut new_started = 0usize;
        let mut cursor = 0usize;
        while remaining > 0 && kv_left > 0 && cursor < self.plan_order.len() {
            let id = self.plan_order[cursor];
            let job = match self.jobs.get_mut(&id) {
                Some(j) => j,
                None => {
                    cursor += 1;
                    continue;
                }
            };
            if job.prefill_done == 0 && new_started >= constraints.max_new_requests {
                break;
            }
            let take = remaining
                .min(job.remaining_tokens())
                .min(kv_left.min(u32::MAX as u64) as u32);
            if take == 0 {
                break;
            }
            if job.prefill_done == 0 {
                new_started += 1;
            }
            let context_before = job.prefill_done;
            job.prefill_done += take;
            remaining -= take;
            kv_left -= take as u64;
            let completes = job.is_complete();
            plan.prefill.push(PrefillAssignment {
                id,
                tokens: take,
                context_before,
                completes_prefill: completes,
                relegated: false,
            });
            if completes {
                self.jobs.remove(&id);
                self.plan_order.remove(cursor);
            } else {
                cursor += 1;
            }
        }
        plan
    }

    fn on_completion(&mut self, spec: &RequestSpec, observed_decode_tokens: u32) {
        self.estimator
            .record_decode(spec.app_id, observed_decode_tokens);
    }

    fn pending_prefills(&self) -> usize {
        self.jobs.len()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.jobs
            .values()
            .map(|j| j.remaining_tokens() as u64)
            .sum()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        self.plan_order.clear();
        std::mem::take(&mut self.jobs).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;
    use qoserve_workload::{QosTier, Slo};

    fn sched() -> SlosServeScheduler {
        SlosServeScheduler::new(
            SlosServeConfig::default(),
            LatencyPredictor::analytical(&HardwareConfig::llama3_8b_a100_tp1()),
        )
    }

    fn spec(id: u64, arrival_secs: f64, prompt: u32, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs_f64(arrival_secs),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    #[test]
    fn serves_attainable_jobs_in_deadline_order() {
        let mut s = sched();
        // Q3 arrived first (deadline 1800s), Q1 second (deadline ~6s).
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 500, QosTier::paper_q3())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 0.1, 500, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let plan = s.plan_batch(SimTime::from_millis(200), &[], Constraints::unlimited());
        assert_eq!(
            plan.prefill[0].id,
            RequestId(1),
            "Q1 deadline leads the plan"
        );
    }

    #[test]
    fn dp_sacrifices_unattainable_jobs() {
        let mut s = sched();
        // A job whose deadline already passed must not displace feasible
        // work in the plan.
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 500, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 99.0, 500, QosTier::paper_q1())),
            SimTime::from_secs(99),
        );
        let plan = s.plan_batch(SimTime::from_secs(100), &[], Constraints::unlimited());
        // Both may be served (budget allows), but the feasible one leads.
        assert_eq!(plan.prefill[0].id, RequestId(1));
    }

    #[test]
    fn dp_packs_deadlines_optimally() {
        // Three jobs, deadlines such that only two can be attained; the DP
        // should pick two (greedy-by-arrival would get one).
        let mut s = sched();
        // ~64us/token prefill: 40k tokens ≈ 2.6s service.
        let service_heavy = 40_000;
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, service_heavy, QosTier::paper_q1())), // deadline 6s
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(1, 0.0, service_heavy, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        s.on_arrival(
            PrefillJob::new(spec(2, 0.0, service_heavy, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        s.replan(SimTime::ZERO);
        // Only two 2.6s services fit a 6s deadline window.
        assert!(s.last_dp_cells() > 0);
        let attained_first_two: Vec<RequestId> = s.plan_order[..2].to_vec();
        assert_eq!(attained_first_two, vec![RequestId(0), RequestId(1)]);
    }

    #[test]
    fn dp_cost_grows_with_queue_depth() {
        let cells_for = |n: u64| {
            let mut s = sched();
            for i in 0..n {
                s.on_arrival(
                    PrefillJob::new(spec(i, 0.0, 2_000, QosTier::paper_q2())),
                    SimTime::ZERO,
                );
            }
            s.replan(SimTime::ZERO);
            s.last_dp_cells()
        };
        let small = cells_for(10);
        let large = cells_for(1_000);
        assert!(
            large > 50 * small.max(1),
            "DP cost must grow superlinearly-ish with queue depth: {small} -> {large}"
        );
    }

    #[test]
    fn respects_constraints_like_other_schedulers() {
        let mut s = sched();
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 1_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let blocked = s.plan_batch(
            SimTime::ZERO,
            &[],
            Constraints {
                kv_headroom_tokens: u64::MAX,
                allow_prefill: false,
                max_new_requests: usize::MAX,
            },
        );
        assert!(blocked.is_empty());
        let capped = s.plan_batch(
            SimTime::ZERO,
            &[],
            Constraints {
                kv_headroom_tokens: 64,
                allow_prefill: true,
                max_new_requests: usize::MAX,
            },
        );
        assert_eq!(capped.prefill_tokens(), 64);
    }

    #[test]
    fn drain_returns_all_jobs() {
        let mut s = sched();
        for i in 0..5 {
            s.on_arrival(
                PrefillJob::new(spec(i, 0.0, 100, QosTier::paper_q2())),
                SimTime::ZERO,
            );
        }
        assert_eq!(s.pending_prefills(), 5);
        assert_eq!(s.pending_prefill_tokens(), 500);
        assert_eq!(s.drain_pending().len(), 5);
        assert_eq!(s.pending_prefills(), 0);
    }
}
