//! Rolling replica health: the engine-side observation feed for the
//! cluster layer's circuit breakers.
//!
//! Every executed iteration contributes one [`HealthSample`] — whether a
//! slowdown window inflated it, the observed/clean latency ratio, and the
//! tokens it advanced — into a fixed-size ring. [`HealthSnapshot`]
//! summarises the ring on demand: degraded-iteration fraction, mean
//! latency ratio, and queue-drain velocity, folded into a single
//! [`score`](HealthSnapshot::score) the breaker thresholds against.
//!
//! Reads are pure (no engine state is touched), so health-driven dispatch
//! decisions never perturb a replica's own timeline — fault-free runs
//! stay bit-identical whether or not anyone looks at the snapshots.

use crate::replica::ReplicaState;

/// Iterations summarised by a snapshot. Large enough to smooth batch-mix
/// noise, small enough that a straggler window dominates the ring within
/// a second or two of onset.
pub const HEALTH_WINDOW: usize = 32;

/// One iteration's contribution to the health ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSample {
    /// Whether a straggler/drift window inflated this iteration.
    pub degraded: bool,
    /// Observed execution latency over the clean model latency (noise and
    /// slowdown included; 1.0 = exactly as modelled).
    pub ratio: f64,
    /// Tokens the iteration advanced (prefill tokens + one per decode).
    pub tokens: u64,
    /// Observed execution latency in microseconds.
    pub exec_us: u64,
}

/// Fixed-size ring of recent [`HealthSample`]s.
#[derive(Debug, Clone, Default)]
pub struct HealthRing {
    samples: Vec<HealthSample>,
    cursor: usize,
}

impl HealthRing {
    /// An empty ring.
    pub fn new() -> Self {
        HealthRing {
            samples: Vec::with_capacity(HEALTH_WINDOW),
            cursor: 0,
        }
    }

    /// Records one iteration, evicting the oldest past [`HEALTH_WINDOW`].
    pub fn record(&mut self, sample: HealthSample) {
        if self.samples.len() < HEALTH_WINDOW {
            self.samples.push(sample);
        } else {
            self.samples[self.cursor] = sample;
        }
        self.cursor = (self.cursor + 1) % HEALTH_WINDOW;
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True before the first iteration.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarises the ring (window-dependent fields only; the caller
    /// fills in identity and queue state).
    fn summarize(&self) -> (f64, f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 1.0, 0.0);
        }
        let n = self.samples.len() as f64;
        let degraded = self.samples.iter().filter(|s| s.degraded).count() as f64 / n;
        let mean_ratio = self.samples.iter().map(|s| s.ratio).sum::<f64>() / n;
        let tokens: u64 = self.samples.iter().map(|s| s.tokens).sum();
        let exec_us: u64 = self.samples.iter().map(|s| s.exec_us).sum();
        let velocity = if exec_us == 0 {
            0.0
        } else {
            tokens as f64 * 1e6 / exec_us as f64
        };
        (degraded, mean_ratio, velocity)
    }
}

/// Point-in-time health of one replica, as reported to the cluster layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Reporting replica.
    pub replica_id: u32,
    /// Availability state at snapshot time.
    pub state: ReplicaState,
    /// Iterations executed by this replica generation so far.
    pub iterations: u64,
    /// Iterations summarised below (0 before the first iteration).
    pub window: usize,
    /// Fraction of windowed iterations inside a slowdown window.
    pub degraded_fraction: f64,
    /// Mean observed/clean latency ratio over the window (1.0 = nominal).
    pub mean_latency_ratio: f64,
    /// Tokens advanced per second of execution over the window.
    pub drain_velocity_tokens_per_sec: f64,
    /// Prompt tokens waiting in the scheduler queue.
    pub queue_tokens: u64,
    /// Requests waiting in the scheduler queue.
    pub pending_prefills: usize,
}

impl HealthSnapshot {
    /// Builds a snapshot from a ring plus the caller's identity and queue
    /// state.
    pub fn from_ring(
        ring: &HealthRing,
        replica_id: u32,
        state: ReplicaState,
        iterations: u64,
        queue_tokens: u64,
        pending_prefills: usize,
    ) -> Self {
        let (degraded_fraction, mean_latency_ratio, drain_velocity_tokens_per_sec) =
            ring.summarize();
        HealthSnapshot {
            replica_id,
            state,
            iterations,
            window: ring.len(),
            degraded_fraction,
            mean_latency_ratio,
            drain_velocity_tokens_per_sec,
            queue_tokens,
            pending_prefills,
        }
    }

    /// Scalar health in `(0, 1]`: 1.0 is a nominal replica; sustained
    /// slowdown pushes the score toward 0. The latency-ratio term is the
    /// reciprocal of the mean ratio (a 2x straggler halves the score);
    /// the degraded-fraction term halves the score when every windowed
    /// iteration was inside a fault window.
    pub fn score(&self) -> f64 {
        let ratio_term = if self.mean_latency_ratio > 1.0 {
            1.0 / self.mean_latency_ratio
        } else {
            1.0
        };
        let degraded_term = 1.0 - 0.5 * self.degraded_fraction.clamp(0.0, 1.0);
        ratio_term * degraded_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(degraded: bool, ratio: f64, tokens: u64, exec_us: u64) -> HealthSample {
        HealthSample {
            degraded,
            ratio,
            tokens,
            exec_us,
        }
    }

    #[test]
    fn empty_ring_reports_nominal() {
        let ring = HealthRing::new();
        let snap = HealthSnapshot::from_ring(&ring, 3, ReplicaState::Up, 0, 0, 0);
        assert_eq!(snap.window, 0);
        assert_eq!(snap.mean_latency_ratio, 1.0);
        assert_eq!(snap.degraded_fraction, 0.0);
        assert_eq!(snap.score(), 1.0);
        assert_eq!(snap.replica_id, 3);
    }

    #[test]
    fn ring_evicts_oldest_past_window() {
        let mut ring = HealthRing::new();
        // Fill with degraded samples, then push a full window of clean
        // ones: the degraded history must age out completely.
        for _ in 0..HEALTH_WINDOW {
            ring.record(sample(true, 2.0, 100, 1_000));
        }
        for _ in 0..HEALTH_WINDOW {
            ring.record(sample(false, 1.0, 100, 1_000));
        }
        assert_eq!(ring.len(), HEALTH_WINDOW);
        let snap = HealthSnapshot::from_ring(&ring, 0, ReplicaState::Up, 64, 0, 0);
        assert_eq!(snap.degraded_fraction, 0.0);
        assert_eq!(snap.mean_latency_ratio, 1.0);
        assert_eq!(snap.score(), 1.0);
    }

    #[test]
    fn straggler_window_degrades_the_score() {
        let mut ring = HealthRing::new();
        for _ in 0..HEALTH_WINDOW {
            ring.record(sample(true, 2.0, 100, 2_000));
        }
        let snap = HealthSnapshot::from_ring(&ring, 0, ReplicaState::Degraded, 32, 0, 0);
        assert_eq!(snap.degraded_fraction, 1.0);
        assert_eq!(snap.mean_latency_ratio, 2.0);
        // ratio term 0.5 x degraded term 0.5 = 0.25.
        assert!((snap.score() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn faster_than_modelled_does_not_inflate_score() {
        let mut ring = HealthRing::new();
        ring.record(sample(false, 0.9, 100, 900));
        let snap = HealthSnapshot::from_ring(&ring, 0, ReplicaState::Up, 1, 0, 0);
        assert_eq!(snap.score(), 1.0, "score is capped at nominal");
    }

    #[test]
    fn drain_velocity_reflects_tokens_per_second() {
        let mut ring = HealthRing::new();
        // 500 tokens in 50 ms -> 10k tokens/s.
        ring.record(sample(false, 1.0, 500, 50_000));
        let snap = HealthSnapshot::from_ring(&ring, 0, ReplicaState::Up, 1, 0, 0);
        assert!((snap.drain_velocity_tokens_per_sec - 10_000.0).abs() < 1e-9);
    }
}
