//! Captures a live-stats snapshot stream from a fig12-diurnal chaos run.
//!
//! Composes the fig12 diurnal square wave with the chaos sweep's fault
//! and scale-churn machinery on the elastic runner, with the
//! `qoserve-stats` aggregator observing at a fixed sim-time cadence. The
//! written JSONL stream is a pure function of `(seed, config)`: CI runs
//! this under `QOSERVE_THREADS=1` (lockstep kernel) and
//! `QOSERVE_THREADS=4` (sharded kernel) and byte-diffs the files. The
//! capture also feeds `qoservetop --replay` (see EXPERIMENTS.md).
//!
//! Usage: `stats_capture [JSONL_PATH]` (default
//! `results/stats_capture.jsonl`).

use std::fs;
use std::path::PathBuf;

use qoserve::experiments::scale_factor;
use qoserve::prelude::*;
use qoserve_stats::{stream_to_jsonl, StatsConfig, StatsHandle};
use qoserve_trace::{RingSink, Tracer};

/// Ring capacity per replica; small enough that heavy replicas overflow,
/// exercising the per-replica drop accounting in the snapshot.
const RING_CAPACITY: usize = 1 << 14;

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/stats_capture.jsonl"));

    // Truncated fig12 diurnal shape (3 <-> 8 QPS square wave, Az-Code)
    // with chaos composed on top: moderate faults plus scale churn.
    let scale = scale_factor();
    let half_period = SimDuration::from_secs_f64(120.0 * scale.clamp(0.2, 1.0));
    let total = half_period * 4;
    let seeds = SeedStream::new(12);
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::DiurnalSquare {
            low_qps: 3.0,
            high_qps: 8.0,
            half_period,
        })
        .duration(total)
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&seeds);

    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let scheme = SchedulerSpec::qoserve();
    let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
    let churn = ScaleChurnConfig {
        events_per_hour: 60.0,
        max_events: 16,
    };
    let schedule = generate_scale_schedule(&churn, total, &seeds);
    let elastic = ElasticPlan {
        lifecycle: LifecycleConfig {
            provision_delay: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(10),
            drain_grace: SimDuration::from_secs(20),
        },
        max_replicas: 4,
        schedule,
        autoscale: None,
    };

    // The aggregator tees off a bounded capture ring and is driven at a
    // 30 s sim-time cadence by the kernel's observation boundaries.
    let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(30)));
    let tracer = Tracer::new(stats.tee(Box::new(RingSink::new(RING_CAPACITY))));

    // `QOSERVE_THREADS` switches the execution *mode* (as trace_capture
    // does): lockstep kernel at 1 thread, sharded kernel otherwise. Both
    // must write byte-identical streams.
    let threads = thread_limit();
    let run = if threads <= 1 {
        run_shared_elastic_observed_lockstep
    } else {
        run_shared_elastic_observed
    };
    let mode = if threads <= 1 {
        "serial-lockstep"
    } else {
        "sharded"
    };
    let result = run(
        &trace,
        2,
        &scheme,
        &config,
        &plan,
        &elastic,
        &seeds,
        &tracer,
        Some(&stats),
    );
    let Ok(result) = result else {
        eprintln!("error: elastic run failed to route requests");
        std::process::exit(1);
    };

    let stream = stats.stream();
    let jsonl = stream_to_jsonl(&stream);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = fs::write(&out, &jsonl) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }

    let full = stats.full();
    let report = SloReport::compute(&result.outcomes, trace.long_prompt_threshold());
    println!(
        "captured {} deltas + final full snapshot ({} events, {} evicted) \
         [{mode}, {threads} thread(s)]",
        stream.deltas.len(),
        full.frame.events,
        full.frame.dropped,
    );
    println!(
        "run: {} requests, {:.2}% violations, {} crashes, {} ups / {} downs",
        result.outcomes.len(),
        report.violation_pct(),
        result.stats.crashes,
        result.stats.scale_ups,
        result.stats.scale_downs,
    );
    println!("stream: {}", out.display());
    println!(
        "view:   cargo run --release -p qoserve-bench --bin qoservetop -- --replay {}",
        out.display()
    );
}
