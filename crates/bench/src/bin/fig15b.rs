//! Figure 15b: GPUs required — PolyServe-style binning vs QoServe
//! colocation.
//!
//! Two interactive classes (Q1: 50 ms TBT, Q2: 100 ms TBT, both 6 s TTFT)
//! at 50 QPS total on Azure-Conv, with the Q1 share varied. PolyServe
//! dedicates a deployment per TBT class (Medha-style adaptive chunking
//! within each); QoServe serves both classes on one shared pool. GPUs =
//! replicas needed to carry each share at the measured per-replica
//! goodput. Expected shape: QoServe needs fewer GPUs at every mix,
//! because colocation exploits cross-class slack and avoids per-class
//! provisioning fragmentation.

use qoserve::experiments::scaled_window;
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::SloReport;

fn tier_50ms() -> QosTier {
    QosTier::new(TierId::Q1, QosClass::interactive_secs_ms(6.0, 50.0))
}

fn tier_100ms() -> QosTier {
    QosTier::new(TierId::Q2, QosClass::interactive_secs_ms(6.0, 100.0))
}

/// Per-replica goodput for a given tier mix under a scheduler. The
/// bracketing probes run on the parallel harness (`par_max_passing`
/// returns the same boundary as the serial search).
fn goodput_for_mix(mix: TierMix, spec: &SchedulerSpec, window: SimDuration, seed: u64) -> f64 {
    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ClusterConfig::new(hw);
    let seeds = SeedStream::new(seed);
    par_max_passing(0.5, 30.0, 0.25, |qps| {
        let trace = TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .duration(window)
            .tier_mix(mix.clone())
            .build(&seeds.child("trace"));
        if trace.is_empty() {
            return true;
        }
        let outcomes = run_shared(&trace, 1, spec, &config, &seeds);
        SloReport::compute(&outcomes, trace.long_prompt_threshold()).meets_goodput_bar(1.0)
    })
    .unwrap_or(0.0)
}

fn main() {
    banner(
        "fig15b",
        "GPUs to serve 50 QPS across two TBT classes: PolyServe vs QoServe",
    );

    let window = scaled_window(600);
    let total_qps = 50.0;

    // PolyServe: per-class deployments with class-specific adaptive
    // chunking (Medha-style, TBT target = the class SLO).
    let poly_sched = |tbt_ms: u64| SchedulerSpec::Medha {
        config: MedhaConfig {
            tbt_target: SimDuration::from_millis(tbt_ms),
            ..MedhaConfig::default()
        },
        predictor: PredictorKind::Analytical,
    };
    eprintln!("measuring per-class goodputs...");
    // The two per-class measurements are independent — run them side by
    // side (each one also parallelizes its own bracketing internally).
    let per_class = par_map(
        vec![(tier_50ms(), 50u64, 151u64), (tier_100ms(), 100u64, 152u64)],
        |_, (tier, tbt_ms, seed)| {
            goodput_for_mix(TierMix::single(tier), &poly_sched(tbt_ms), window, seed)
        },
    );
    let (g_poly_50, g_poly_100) = (per_class[0], per_class[1]);
    eprintln!("  PolyServe per-replica goodput: 50ms class {g_poly_50:.1} QPS, 100ms class {g_poly_100:.1} QPS");

    let mut table = Table::new(vec![
        "Q1(50ms) share",
        "PolyServe GPUs",
        "QoServe GPUs",
        "savings",
    ]);
    let mut rows = Vec::new();
    for q1_share in [0.9, 0.7, 0.5, 0.3, 0.1] {
        let poly_gpus = (total_qps * q1_share / g_poly_50.max(1e-9)).ceil()
            + (total_qps * (1.0 - q1_share) / g_poly_100.max(1e-9)).ceil();

        let mix = TierMix::new(vec![
            (tier_50ms(), q1_share),
            (tier_100ms(), 1.0 - q1_share),
        ]);
        let g_qs = goodput_for_mix(mix, &SchedulerSpec::qoserve(), window, 153);
        let qs_gpus = (total_qps / g_qs.max(1e-9)).ceil();

        table.row(vec![
            format!("{:.0}%", q1_share * 100.0),
            format!("{poly_gpus:.0}"),
            format!("{qs_gpus:.0}"),
            format!("{:.0}%", (1.0 - qs_gpus / poly_gpus) * 100.0),
        ]);
        eprintln!(
            "  done: Q1 share {:.0}% (QoServe goodput {g_qs:.1})",
            q1_share * 100.0
        );
        rows.push(serde_json::json!({
            "q1_share": q1_share,
            "qps": total_qps,
            "polyserve_gpus": poly_gpus,
            "qoserve_gpus": qs_gpus,
            "qoserve_goodput_qps": g_qs,
            "polyserve_goodput_50ms_qps": g_poly_50,
            "polyserve_goodput_100ms_qps": g_poly_100,
        }));
    }
    print!("{table}");
    println!("\npaper: QoServe always requires fewer A100s than PolyServe's per-class deployments");
    emit_results("fig15b", &rows);
}
