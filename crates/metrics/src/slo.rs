//! SLO-violation accounting over outcome sets.
//!
//! [`SloReport`] computes every violation breakdown the paper plots:
//! overall (Fig. 11a), by request length (Fig. 11b/c), by tier
//! (Fig. 11d–f), by importance (Fig. 12's table), plus per-tier latency
//! summaries (Fig. 10, Table 4, Table 6).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use qoserve_workload::{Priority, TierId};

use crate::outcome::{Disposition, RequestOutcome};
use crate::percentile::LatencySummary;

/// Violation and latency breakdowns over a set of request outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Total requests.
    pub total: usize,
    /// Requests that violated their SLO.
    pub violations: usize,
    /// Requests bounced at admission (rate limiting). Counted inside
    /// `violations` too, but reported separately: a 429 is not a deadline
    /// miss, and goodput denominators need the distinction.
    #[serde(default)]
    pub rejected: usize,
    /// Requests dropped by tier-aware shedding after capacity loss.
    #[serde(default)]
    pub shed: usize,
    /// Requests lost to repeated crashes (retry budget exhausted).
    #[serde(default)]
    pub retry_exhausted: usize,
    /// Per-tier (total, violated) counts.
    pub by_tier: BTreeMap<TierId, (usize, usize)>,
    /// (total, violated) among short requests (prompt < threshold).
    pub short: (usize, usize),
    /// (total, violated) among long requests (prompt >= threshold).
    pub long: (usize, usize),
    /// (total, violated) among important (non-low-priority) requests.
    pub important: (usize, usize),
    /// Fraction of requests that were relegated at some point.
    pub relegated_fraction: f64,
    /// Prompt-length threshold used for the short/long split.
    pub long_threshold: u32,
    /// Per-tier latency summaries over the tier's judged metric (TTFT for
    /// interactive tiers, TTLT otherwise), finished requests only.
    pub tier_latency: BTreeMap<TierId, LatencySummary>,
}

impl SloReport {
    /// Builds the report. `long_threshold` is the p90 prompt length of the
    /// trace (see `Trace::long_prompt_threshold`).
    pub fn compute(outcomes: &[RequestOutcome], long_threshold: u32) -> Self {
        let mut by_tier: BTreeMap<TierId, (usize, usize)> = BTreeMap::new();
        let mut tier_lat: BTreeMap<TierId, Vec<f64>> = BTreeMap::new();
        let mut short = (0, 0);
        let mut long = (0, 0);
        let mut important = (0, 0);
        let mut violations = 0;
        let mut relegated = 0;
        let mut rejected = 0;
        let mut shed = 0;
        let mut retry_exhausted = 0;

        for o in outcomes {
            let v = o.violated();
            match o.disposition {
                Disposition::Rejected => rejected += 1,
                Disposition::Shed => shed += 1,
                Disposition::RetryExhausted => retry_exhausted += 1,
                Disposition::Completed | Disposition::Unfinished => {}
            }
            let entry = by_tier.entry(o.tier()).or_default();
            entry.0 += 1;
            let length_bucket = if o.is_long(long_threshold) {
                &mut long
            } else {
                &mut short
            };
            length_bucket.0 += 1;
            if o.priority() == Priority::Important {
                important.0 += 1;
            }
            if v {
                violations += 1;
                entry.1 += 1;
                length_bucket.1 += 1;
                if o.priority() == Priority::Important {
                    important.1 += 1;
                }
            }
            if o.relegated {
                relegated += 1;
            }
            if let Some(lat) = o.tier_latency() {
                tier_lat
                    .entry(o.tier())
                    .or_default()
                    .push(lat.as_secs_f64());
            }
        }

        SloReport {
            total: outcomes.len(),
            violations,
            rejected,
            shed,
            retry_exhausted,
            by_tier,
            short,
            long,
            important,
            relegated_fraction: if outcomes.is_empty() {
                0.0
            } else {
                relegated as f64 / outcomes.len() as f64
            },
            long_threshold,
            tier_latency: tier_lat
                .into_iter()
                .map(|(t, xs)| (t, LatencySummary::of_seconds(&xs)))
                .collect(),
        }
    }

    /// Overall violation percentage in `[0, 100]`.
    pub fn violation_pct(&self) -> f64 {
        pct(self.violations, self.total)
    }

    /// Requests the system actually admitted (total minus rejections) —
    /// the denominator of [`served_violation_pct`](Self::served_violation_pct).
    pub fn served_total(&self) -> usize {
        self.total.saturating_sub(self.rejected)
    }

    /// Percentage of *admitted* requests that violated their SLO. Rate
    /// limiters bounce requests precisely to keep this number low; keeping
    /// rejections out of the denominator makes that trade-off visible
    /// instead of folding a 429 into the same bucket as a deadline miss.
    pub fn served_violation_pct(&self) -> f64 {
        pct(
            self.violations.saturating_sub(self.rejected),
            self.served_total(),
        )
    }

    /// Percentage of all requests bounced at admission.
    pub fn rejected_pct(&self) -> f64 {
        pct(self.rejected, self.total)
    }

    /// Violation percentage within one tier.
    pub fn tier_violation_pct(&self, tier: TierId) -> f64 {
        self.by_tier
            .get(&tier)
            .map_or(0.0, |(total, v)| pct(*v, *total))
    }

    /// Violation percentage among short requests.
    pub fn short_violation_pct(&self) -> f64 {
        pct(self.short.1, self.short.0)
    }

    /// Violation percentage among long requests.
    pub fn long_violation_pct(&self) -> f64 {
        pct(self.long.1, self.long.0)
    }

    /// Violation percentage among important requests.
    pub fn important_violation_pct(&self) -> f64 {
        pct(self.important.1, self.important.0)
    }

    /// Latency summary for one tier's judged metric.
    pub fn tier_summary(&self, tier: TierId) -> LatencySummary {
        self.tier_latency.get(&tier).copied().unwrap_or_default()
    }

    /// True when the run "meets QoS" under the paper's goodput criterion:
    /// at most `allowed_violation_pct` percent of requests violated.
    pub fn meets_goodput_bar(&self, allowed_violation_pct: f64) -> bool {
        self.violation_pct() <= allowed_violation_pct
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::time::SignedDuration;
    use qoserve_sim::{SimDuration, SimTime};
    use qoserve_workload::{QosTier, RequestId, RequestSpec, Slo};

    fn outcome(
        id: u64,
        tier: QosTier,
        prompt: u32,
        priority: Priority,
        violated: bool,
        relegated: bool,
    ) -> RequestOutcome {
        let spec = RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier).with_priority(priority),
            app_id: 0,
        };
        RequestOutcome {
            spec,
            first_token: Some(SimTime::from_secs(1)),
            completion: Some(SimTime::from_secs(2)),
            max_tbt: SimDuration::from_millis(30),
            worst_token_lateness: SignedDuration::from_micros(if violated { 1 } else { -1 }),
            relegated,
            replica: 0,
            disposition: Disposition::Completed,
            retries: 0,
            reprefill_tokens: 0,
            drain_migrations: 0,
        }
    }

    fn sample() -> Vec<RequestOutcome> {
        vec![
            outcome(
                0,
                QosTier::paper_q1(),
                100,
                Priority::Important,
                false,
                false,
            ),
            outcome(
                1,
                QosTier::paper_q1(),
                5_000,
                Priority::Important,
                true,
                true,
            ),
            outcome(2, QosTier::paper_q2(), 100, Priority::Low, true, true),
            outcome(
                3,
                QosTier::paper_q3(),
                100,
                Priority::Important,
                false,
                false,
            ),
        ]
    }

    #[test]
    fn overall_counts() {
        let r = SloReport::compute(&sample(), 4_000);
        assert_eq!(r.total, 4);
        assert_eq!(r.violations, 2);
        assert_eq!(r.violation_pct(), 50.0);
        assert_eq!(r.relegated_fraction, 0.5);
    }

    #[test]
    fn per_tier_breakdown() {
        let r = SloReport::compute(&sample(), 4_000);
        assert_eq!(r.tier_violation_pct(TierId::Q1), 50.0);
        assert_eq!(r.tier_violation_pct(TierId::Q2), 100.0);
        assert_eq!(r.tier_violation_pct(TierId::Q3), 0.0);
        assert_eq!(r.tier_violation_pct(TierId(9)), 0.0);
    }

    #[test]
    fn length_split() {
        let r = SloReport::compute(&sample(), 4_000);
        // One long request (5000 tokens), which violated.
        assert_eq!(r.long, (1, 1));
        assert_eq!(r.long_violation_pct(), 100.0);
        assert_eq!(r.short, (3, 1));
        assert!((r.short_violation_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn importance_split() {
        let r = SloReport::compute(&sample(), 4_000);
        // 3 important, 1 of them violated.
        assert_eq!(r.important, (3, 1));
        assert!((r.important_violation_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_bar() {
        let r = SloReport::compute(&sample(), 4_000);
        assert!(!r.meets_goodput_bar(1.0));
        assert!(r.meets_goodput_bar(50.0));
    }

    #[test]
    fn tier_latency_uses_judged_metric() {
        let r = SloReport::compute(&sample(), 4_000);
        // Q1 is interactive: judged on TTFT = 1s.
        assert_eq!(r.tier_summary(TierId::Q1).p50, 1.0);
        // Q2 is non-interactive: judged on TTLT = 2s.
        assert_eq!(r.tier_summary(TierId::Q2).p50, 2.0);
        // Unknown tier yields the empty summary.
        assert_eq!(r.tier_summary(TierId(9)).count, 0);
    }

    #[test]
    fn empty_outcomes() {
        let r = SloReport::compute(&[], 100);
        assert_eq!(r.total, 0);
        assert_eq!(r.violation_pct(), 0.0);
        assert_eq!(r.relegated_fraction, 0.0);
        assert!(r.meets_goodput_bar(0.0));
    }

    #[test]
    fn serde_round_trip() {
        let r = SloReport::compute(&sample(), 4_000);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<SloReport>(&json).unwrap(), r);
    }

    #[test]
    fn serde_round_trip_with_disposition_counters() {
        // A report where every disposition-derived counter is nonzero
        // must survive the round trip bit-for-bit.
        let mut outcomes = sample();
        let spec = outcomes[0].spec;
        outcomes.push(RequestOutcome::rejected(spec, 0));
        outcomes.push(RequestOutcome::unserved(spec, false, 0, Disposition::Shed));
        outcomes.push(RequestOutcome::unserved(
            spec,
            false,
            0,
            Disposition::RetryExhausted,
        ));
        let r = SloReport::compute(&outcomes, 4_000);
        assert!(r.rejected > 0 && r.shed > 0 && r.retry_exhausted > 0);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<SloReport>(&json).unwrap(), r);
    }

    #[test]
    fn old_reports_without_disposition_counters_still_deserialize() {
        // Reports serialized before rejected/shed/retry_exhausted existed
        // must load with those counters defaulting to zero.
        let r = SloReport::compute(&sample(), 4_000);
        let mut v = serde_json::to_value(&r).unwrap();
        let map = v.as_object_mut().unwrap();
        map.remove("rejected");
        map.remove("shed");
        map.remove("retry_exhausted");
        let back: SloReport = serde_json::from_value(v).unwrap();
        assert_eq!(back, r, "defaults must reproduce the zero counters");
    }

    #[test]
    fn rejections_are_counted_separately() {
        let mut outcomes = sample(); // 4 requests, 2 violations
        let spec = outcomes[0].spec;
        outcomes.push(RequestOutcome::rejected(spec, 0));
        outcomes.push(RequestOutcome::unserved(
            spec,
            false,
            0,
            crate::outcome::Disposition::Shed,
        ));
        let r = SloReport::compute(&outcomes, 4_000);
        assert_eq!(r.total, 6);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.shed, 1);
        assert_eq!(r.retry_exhausted, 0);
        // Rejected and shed requests still violate overall...
        assert_eq!(r.violations, 4);
        // ...but the served-only denominator excludes the 429.
        assert_eq!(r.served_total(), 5);
        assert!((r.served_violation_pct() - 60.0).abs() < 1e-9);
        assert!((r.rejected_pct() - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn no_faults_means_zero_new_counters() {
        let r = SloReport::compute(&sample(), 4_000);
        assert_eq!((r.rejected, r.shed, r.retry_exhausted), (0, 0, 0));
        assert_eq!(r.served_total(), r.total);
        assert_eq!(r.served_violation_pct(), r.violation_pct());
    }
}
