//! Fixture: an exporter handling only two of the three variants; the
//! `_` arm hides `Dropped` — exactly what `trace-coverage` rejects.

use crate::event::TraceEvent;

pub fn name(e: &TraceEvent) -> &'static str {
    match e {
        TraceEvent::Arrived => "arrived",
        TraceEvent::Completed => "completed",
        _ => "other",
    }
}
