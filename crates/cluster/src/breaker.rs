//! Per-replica circuit breakers: health-aware dispatch for the recovery
//! loop.
//!
//! A crashed replica is easy — it stops, surfaces orphans, and the
//! recovery loop re-dispatches them. A *straggling-but-alive* replica is
//! worse: it keeps accepting work and keeps missing deadlines. The
//! breaker closes that gap. Each replica's rolling
//! [`HealthSnapshot`](qoserve_engine::HealthSnapshot) is thresholded into
//! a three-state machine:
//!
//! * **Closed** — healthy; receives re-dispatched work normally.
//! * **Open** — score fell below [`BreakerConfig::open_below_score`];
//!   no new work until [`BreakerConfig::cooldown`] elapses.
//! * **HalfProbe** — cooldown elapsed; the replica may receive work
//!   again (the probe). A recovered score closes the breaker, a still-bad
//!   score re-opens it for another cooldown.
//!
//! Target selection ([`pick_target`]) prefers breaker-allowed replicas
//! but *always* falls back to the full up-set when every breaker is open
//! — a breaker may delay work, never strand it. All transitions are
//! driven by simulated time and deterministic health scores, so breaker
//! decisions replay bit-identically.

use qoserve_engine::{HealthSnapshot, ReplicaState};
use qoserve_sim::nums;
use qoserve_sim::{SimDuration, SimTime};
use qoserve_trace::{BreakerPhase, TraceEvent, Tracer};

/// Breaker thresholds and cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Open when the health score drops below this.
    pub open_below_score: f64,
    /// Close a probing breaker when the score recovers above this
    /// (hysteresis: strictly greater than `open_below_score`).
    pub close_above_score: f64,
    /// Minimum windowed iterations before a snapshot is trusted — a
    /// freshly (re)started replica is never judged on one bad batch.
    pub min_window: usize,
    /// Time an open breaker blocks dispatch before probing again.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    /// Defaults: open below 0.6 (a ~1.7x sustained straggler), close
    /// above 0.85, judge after 8 iterations, probe every 5 s.
    fn default() -> Self {
        BreakerConfig {
            open_below_score: 0.6,
            close_above_score: 0.85,
            min_window: 8,
            cooldown: SimDuration::from_secs(5),
        }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; dispatch allowed.
    Closed,
    /// Tripped; dispatch blocked until the cooldown elapses.
    Open,
    /// Cooldown elapsed; dispatch allowed as a probe.
    HalfProbe,
}

/// One replica's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    opened_at: SimTime,
    opens: u64,
    /// Decision tracer, pre-bound to this breaker's replica id by the
    /// recovery orchestrator (disabled by default).
    tracer: Tracer,
}

/// The trace-crate mirror of a [`BreakerState`].
fn phase_of(state: BreakerState) -> BreakerPhase {
    match state {
        BreakerState::Closed => BreakerPhase::Closed,
        BreakerState::Open => BreakerPhase::Open,
        BreakerState::HalfProbe => BreakerPhase::HalfProbe,
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            opened_at: SimTime::ZERO,
            opens: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a decision tracer. Pass a handle already bound to this
    /// breaker's replica id (`Tracer::for_replica`) so transitions land on
    /// the right stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Moves to `to` at `now`, emitting the transition when traced.
    fn transition(&mut self, to: BreakerState, now: SimTime) {
        if self.tracer.enabled() && self.state != to {
            self.tracer.emit_at(
                now,
                None,
                TraceEvent::BreakerTransition {
                    from: phase_of(self.state),
                    to: phase_of(to),
                },
            );
        }
        self.state = to;
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped (probe failures count again).
    pub fn open_count(&self) -> u64 {
        self.opens
    }

    /// Feeds one health snapshot into the state machine.
    pub fn observe(&mut self, snapshot: &HealthSnapshot, now: SimTime) {
        // An open breaker matures into a probe on its own clock, even if
        // the snapshot arrives late.
        if self.state == BreakerState::Open && now >= self.opened_at + self.config.cooldown {
            self.transition(BreakerState::HalfProbe, now);
        }
        if snapshot.window < self.config.min_window {
            return; // not enough evidence to judge either way
        }
        let score = snapshot.score();
        match self.state {
            BreakerState::Closed | BreakerState::HalfProbe
                if score < self.config.open_below_score =>
            {
                self.transition(BreakerState::Open, now);
                self.opened_at = now;
                self.opens += 1;
            }
            BreakerState::HalfProbe if score >= self.config.close_above_score => {
                self.transition(BreakerState::Closed, now);
            }
            _ => {}
        }
    }

    /// Whether dispatch to this replica is allowed at `now`. An open
    /// breaker past its cooldown allows dispatch (the dispatch *is* the
    /// probe) even before the next `observe` formally transitions it.
    pub fn allows(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfProbe => true,
            BreakerState::Open => now >= self.opened_at + self.config.cooldown,
        }
    }

    /// Snaps back to `Closed` — a restarted replica is a fresh generation
    /// with no health history.
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.opened_at = SimTime::ZERO;
    }
}

/// A dispatch decision from [`pick_target`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickedTarget {
    /// The chosen replica id (always a member of the caller's up-set).
    pub replica: u32,
    /// True when the breakers pruned the candidate set — the pick was
    /// steered away from at least one up-but-unhealthy replica.
    pub diverted: bool,
}

/// Round-robin over `up` by the caller's rotation cursor. `None` only
/// when `up` is empty.
pub fn pick_round_robin(up: &[u32], rotation: u64) -> Option<PickedTarget> {
    if up.is_empty() {
        return None;
    }
    Some(PickedTarget {
        replica: up[(rotation % up.len() as u64) as usize],
        diverted: false,
    })
}

/// Health- and lifecycle-aware target selection.
///
/// The candidate set is pruned in two stages with different strength:
///
/// 1. **Lifecycle filter (strict).** `states` is indexed by replica id
///    (replicas beyond its length count as serving, so non-elastic
///    callers pass `&[]`). Replicas whose state does not
///    [accept work](qoserve_engine::ReplicaState::accepts_work) — e.g.
///    `Warming` or `Draining` — are removed with *no* fallback: routing
///    to a draining replica would violate the drain contract, and a
///    warming replica has no model loaded. `None` when nothing survives.
/// 2. **Breaker filter (soft).** Round-robin over the breaker-allowed
///    subset, falling back to the whole lifecycle-admissible set when
///    every breaker blocks — a breaker may delay work, never strand it.
///    `breakers` is indexed by replica id.
pub fn pick_target(
    up: &[u32],
    states: &[ReplicaState],
    breakers: &[CircuitBreaker],
    rotation: u64,
    at: SimTime,
) -> Option<PickedTarget> {
    let admissible: Vec<u32> = up
        .iter()
        .copied()
        .filter(|&r| {
            states
                .get(nums::u32_to_usize(r))
                .is_none_or(|s| s.accepts_work())
        })
        .collect();
    if admissible.is_empty() {
        return None;
    }
    let allowed: Vec<u32> = admissible
        .iter()
        .copied()
        .filter(|&r| breakers.get(r as usize).is_none_or(|b| b.allows(at)))
        .collect();
    if allowed.is_empty() || allowed.len() == admissible.len() {
        return pick_round_robin(&admissible, rotation);
    }
    pick_round_robin(&allowed, rotation).map(|p| PickedTarget {
        diverted: true,
        ..p
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_engine::{HealthRing, HealthSample, HealthSnapshot, ReplicaState, HEALTH_WINDOW};

    fn snapshot(ratio: f64, window: usize) -> HealthSnapshot {
        let mut ring = HealthRing::new();
        for _ in 0..window.min(HEALTH_WINDOW) {
            ring.record(HealthSample {
                degraded: ratio > 1.0,
                ratio,
                tokens: 100,
                exec_us: 1_000,
            });
        }
        HealthSnapshot::from_ring(&ring, 0, ReplicaState::Up, window as u64, 0, 0)
    }

    /// A full ring where only `degraded` of the samples are still inside
    /// a fault window at `ratio`; the rest have fully recovered.
    fn partial_snapshot(degraded: usize, ratio: f64) -> HealthSnapshot {
        let mut ring = HealthRing::new();
        for i in 0..HEALTH_WINDOW {
            let bad = i < degraded;
            ring.record(HealthSample {
                degraded: bad,
                ratio: if bad { ratio } else { 1.0 },
                tokens: 100,
                exec_us: 1_000,
            });
        }
        HealthSnapshot::from_ring(&ring, 0, ReplicaState::Up, HEALTH_WINDOW as u64, 0, 0)
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn healthy_replica_stays_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for t in 0..20 {
            b.observe(&snapshot(1.0, HEALTH_WINDOW), secs(t));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.open_count(), 0);
        assert!(b.allows(secs(20)));
    }

    #[test]
    fn straggler_opens_after_min_window() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        // 3x straggler, but too little evidence: stays closed.
        b.observe(&snapshot(3.0, 4), secs(1));
        assert_eq!(b.state(), BreakerState::Closed);
        // Full window of the same: opens and blocks dispatch.
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(2));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_count(), 1);
        assert!(!b.allows(secs(3)));
    }

    #[test]
    fn cooldown_matures_into_probe_then_closes_on_recovery() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        assert!(!b.allows(secs(5)));
        // Cooldown (5 s) elapsed: dispatch is allowed as the probe even
        // before the next observation.
        assert!(b.allows(secs(6)));
        b.observe(&snapshot(1.0, HEALTH_WINDOW), secs(7));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.open_count(), 1);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(7)); // probe fails
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_count(), 2);
        assert!(!b.allows(secs(8)));
        assert!(b.allows(secs(12)));
    }

    #[test]
    fn middling_score_holds_the_probe_open() {
        // Hysteresis: a probe score between the thresholds neither closes
        // nor re-opens. 12 of 32 windowed samples still degraded at 1.2x
        // scores ~0.76 — above open_below (0.6), below close_above (0.85).
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        b.observe(&partial_snapshot(12, 1.2), secs(7));
        assert_eq!(b.state(), BreakerState::HalfProbe);
        assert!(b.allows(secs(8)));
    }

    #[test]
    fn reset_closes_and_keeps_the_open_count() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        b.reset();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.open_count(), 1, "history survives for stats");
        assert!(b.allows(secs(2)));
    }

    #[test]
    fn pick_target_prefers_allowed_replicas() {
        let mut breakers: Vec<CircuitBreaker> = (0..3)
            .map(|_| CircuitBreaker::new(BreakerConfig::default()))
            .collect();
        breakers[1].observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        let up = [0u32, 1, 2];
        for rotation in 0..6 {
            let p = pick_target(&up, &[], &breakers, rotation, secs(2)).unwrap();
            assert_ne!(p.replica, 1, "open breaker must divert work");
            assert!(p.diverted);
        }
    }

    #[test]
    fn pick_target_falls_back_when_every_breaker_is_open() {
        let mut breakers: Vec<CircuitBreaker> = (0..2)
            .map(|_| CircuitBreaker::new(BreakerConfig::default()))
            .collect();
        for b in &mut breakers {
            b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(1));
        }
        let up = [0u32, 1];
        let p = pick_target(&up, &[], &breakers, 0, secs(2)).unwrap();
        assert_eq!(p.replica, 0, "fallback is plain round-robin over up");
        assert!(!p.diverted, "no healthy subset existed to divert into");
    }

    #[test]
    fn pick_target_with_all_closed_matches_round_robin() {
        let breakers: Vec<CircuitBreaker> = (0..3)
            .map(|_| CircuitBreaker::new(BreakerConfig::default()))
            .collect();
        let up = [0u32, 2];
        for rotation in 0..5 {
            assert_eq!(
                pick_target(&up, &[], &breakers, rotation, secs(1)),
                pick_round_robin(&up, rotation),
            );
        }
    }

    #[test]
    fn pick_target_never_routes_to_warming_or_draining() {
        // Regression for the elastic control plane: lifecycle states are
        // a strict filter with no fallback, unlike breakers.
        let up = [0u32, 1, 2, 3];
        let states = [
            ReplicaState::Up,
            ReplicaState::Warming,
            ReplicaState::Draining,
            ReplicaState::Up,
        ];
        for rotation in 0..8 {
            let p = pick_target(&up, &states, &[], rotation, secs(1)).unwrap();
            assert!(
                p.replica == 0 || p.replica == 3,
                "rotation {rotation} routed to lifecycle-inadmissible replica {}",
                p.replica
            );
        }
        // Even with every breaker healthy, an all-draining fleet yields
        // no target — the drain contract beats the never-strand rule.
        let draining = [ReplicaState::Draining; 4];
        assert_eq!(pick_target(&up, &draining, &[], 0, secs(1)), None);
        // Replicas beyond the states slice count as serving.
        let short = [ReplicaState::Draining];
        let p = pick_target(&up, &short, &[], 0, secs(1)).unwrap();
        assert_ne!(p.replica, 0);
    }

    #[test]
    fn empty_up_set_yields_none() {
        assert_eq!(pick_round_robin(&[], 3), None);
        assert_eq!(pick_target(&[], &[], &[], 3, secs(1)), None);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The breaker may steer work, never strand it: for any
            /// non-empty up-set and any breaker states, a target exists
            /// and is a member of the up-set.
            #[test]
            fn never_strands_work(
                up in proptest::collection::btree_set(0u32..8, 1..8),
                bad in proptest::collection::vec(any::<bool>(), 8),
                rotation in any::<u64>(),
                at_secs in 0u64..100,
            ) {
                let up: Vec<u32> = up.into_iter().collect();
                let mut breakers: Vec<CircuitBreaker> = bad
                    .iter()
                    .map(|_| CircuitBreaker::new(BreakerConfig::default()))
                    .collect();
                for (b, &is_bad) in breakers.iter_mut().zip(&bad) {
                    if is_bad {
                        b.observe(&snapshot(3.0, HEALTH_WINDOW), secs(at_secs));
                    }
                }
                let picked = pick_target(&up, &[], &breakers, rotation, secs(at_secs));
                prop_assert!(picked.is_some(), "non-empty up-set must yield a target");
                let picked = picked.unwrap();
                prop_assert!(up.contains(&picked.replica));
                // Diversion only claims to have pruned when a healthy
                // subset actually existed — and then the pick is healthy.
                if picked.diverted {
                    prop_assert!(breakers[picked.replica as usize].allows(secs(at_secs)));
                }
            }
        }
    }
}
