//! The ratcheting baselines (`lint-baseline.toml`).
//!
//! Existing rule debt in library code is frozen per file for each
//! *ratcheted family* (see [`FAMILIES`]): a file may never *gain* sites,
//! and when it sheds some, `--fix-baseline` rewrites the file so the new,
//! lower count becomes the ceiling. Each family owns one section of the
//! file. The format is a deliberately tiny TOML subset — known sections,
//! quoted-path keys, integer values — parsed by hand so the linter stays
//! dependency-free:
//!
//! ```toml
//! [panic-hygiene]
//! "crates/sched/src/queue.rs" = 14
//!
//! [lossy-cast]
//! "crates/sim/src/time.rs" = 9
//! ```

use std::collections::BTreeMap;

use crate::rules::{RULE_ALLOC, RULE_CAST, RULE_OUTPUT, RULE_PANIC, RULE_SERDE};

/// One ratcheted rule family: its baseline section name (== rule name)
/// and the phrasing of its over-ceiling diagnostic.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// Rule name; also the `[section]` header in `lint-baseline.toml`.
    pub rule: &'static str,
    /// What a site is, for the count message ("N {noun} (first: ..)").
    pub noun: &'static str,
    /// How to fix it, appended after the count.
    pub hint: &'static str,
}

/// Every ratcheted family, in baseline-section render order.
pub const FAMILIES: &[Family] = &[
    Family {
        rule: RULE_PANIC,
        noun: "panic site(s) in non-test code",
        hint: "handle the error or waive with a reason, never raise the baseline",
    },
    Family {
        rule: RULE_OUTPUT,
        noun: "unstructured output site(s) in library code",
        hint: "return data to the caller (or use the trace layer) instead of printing, or \
               waive with a reason",
    },
    Family {
        rule: RULE_ALLOC,
        noun: "allocation site(s) in hot-path code",
        hint: "reuse a scratch buffer or slab slot (see `qoserve_sim::eventcore`), or waive \
               with a reason",
    },
    Family {
        rule: RULE_CAST,
        noun: "lossy integer cast(s)",
        hint: "use the checked conversions in `qoserve_sim::nums`, or waive with a reason",
    },
    Family {
        rule: RULE_SERDE,
        noun: "persisted serde field(s) without `#[serde(default)]`",
        hint: "add `#[serde(default)]` so old JSONL artifacts keep deserializing, or waive \
               with a reason",
    },
];

/// Looks up a family by rule name.
pub fn family(rule: &str) -> Option<&'static Family> {
    FAMILIES.iter().find(|f| f.rule == rule)
}

/// Per-family, per-file allowed site counts, keyed by workspace-relative
/// path (always with `/` separators, so baselines are portable across
/// hosts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// family rule name -> (file path -> allowed count).
    pub sections: BTreeMap<&'static str, BTreeMap<String, u32>>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Allowed site count of `rule` for `path` (0 when not listed).
    pub fn allowed_for(&self, rule: &str, path: &str) -> u32 {
        self.sections
            .get(rule)
            .and_then(|m| m.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Records the current count of `rule` for `path` (what
    /// `--fix-baseline` writes). Zero counts are simply not recorded.
    pub fn record(&mut self, rule: &'static str, path: &str, count: u32) {
        if count > 0 {
            self.sections
                .entry(rule)
                .or_default()
                .insert(path.to_string(), count);
        }
    }

    /// The per-file counts of one family (empty map when none).
    pub fn counts_of(&self, rule: &str) -> &BTreeMap<String, u32> {
        static EMPTY: BTreeMap<String, u32> = BTreeMap::new();
        self.sections.get(rule).unwrap_or(&EMPTY)
    }

    /// Parses the baseline file contents. Section names must be ratcheted
    /// family rules (see [`FAMILIES`]).
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut baseline = Baseline::default();
        let mut section: Option<&'static str> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                let Some(fam) = FAMILIES.iter().find(|f| f.rule == name) else {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("unknown section `[{name}]`"),
                    });
                };
                section = Some(fam.rule);
                continue;
            }
            let Some(section) = section else {
                return Err(BaselineError {
                    line: lineno,
                    message: "entry before a family section header (e.g. `[panic-hygiene]`)"
                        .to_string(),
                });
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `\"path\" = count`, found `{line}`"),
                });
            };
            let key = key.trim();
            let Some(path) = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .filter(|p| !p.is_empty())
            else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("path must be double-quoted, found `{key}`"),
                });
            };
            let count: u32 = value.trim().parse().map_err(|_| BaselineError {
                line: lineno,
                message: format!(
                    "count must be a non-negative integer, found `{}`",
                    value.trim()
                ),
            })?;
            baseline
                .sections
                .entry(section)
                .or_default()
                .insert(path.to_string(), count);
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its canonical on-disk form: families
    /// in [`FAMILIES`] order, entries sorted, zero-count entries dropped,
    /// empty sections omitted — except the first family, which is always
    /// present as the file anchor.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Ratcheting lint baselines, maintained by `qoserve-lint`.\n\
             # Counts may only go DOWN: fix the sites, then run\n\
             # `cargo run -p qoserve-lint -- --fix-baseline` to lower the ceiling.\n",
        );
        for (idx, fam) in FAMILIES.iter().enumerate() {
            let counts = self.counts_of(fam.rule);
            let nonzero = counts.values().any(|c| *c > 0);
            if idx > 0 && !nonzero {
                continue;
            }
            out.push_str(&format!("\n[{}]\n", fam.rule));
            for (path, count) in counts {
                if *count > 0 {
                    out.push_str(&format!("\"{path}\" = {count}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_queries() {
        let b = Baseline::parse(
            "# comment\n\n[panic-hygiene]\n\"crates/a/src/x.rs\" = 14\n\"crates/b/src/y.rs\" = 3\n",
        )
        .unwrap();
        assert_eq!(b.allowed_for(RULE_PANIC, "crates/a/src/x.rs"), 14);
        assert_eq!(b.allowed_for(RULE_PANIC, "crates/b/src/y.rs"), 3);
        assert_eq!(b.allowed_for(RULE_PANIC, "crates/never/seen.rs"), 0);
        assert_eq!(b.allowed_for(RULE_OUTPUT, "crates/a/src/x.rs"), 0);
    }

    #[test]
    fn parses_every_family_section() {
        let text = "[panic-hygiene]\n\"a.rs\" = 1\n\n\
                    [unstructured-output]\n\"b.rs\" = 2\n\n\
                    [hot-path-alloc]\n\"c.rs\" = 3\n\n\
                    [lossy-cast]\n\"d.rs\" = 4\n\n\
                    [serde-back-compat]\n\"e.rs\" = 5\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed_for(RULE_PANIC, "a.rs"), 1);
        assert_eq!(b.allowed_for(RULE_OUTPUT, "b.rs"), 2);
        assert_eq!(b.allowed_for(RULE_ALLOC, "c.rs"), 3);
        assert_eq!(b.allowed_for(RULE_CAST, "d.rs"), 4);
        assert_eq!(b.allowed_for(RULE_SERDE, "e.rs"), 5);
        // Sections are independent namespaces.
        assert_eq!(b.allowed_for(RULE_CAST, "a.rs"), 0);
    }

    #[test]
    fn empty_file_is_empty_baseline() {
        let b = Baseline::parse("").unwrap();
        assert!(b.sections.is_empty());
        assert_eq!(b.allowed_for(RULE_PANIC, "anything"), 0);
    }

    #[test]
    fn render_roundtrips_sorted_without_zeros() {
        let mut b = Baseline::default();
        b.record(RULE_PANIC, "z.rs", 2);
        b.record(RULE_PANIC, "a.rs", 7);
        b.record(RULE_PANIC, "gone.rs", 0);
        b.record(RULE_OUTPUT, "out.rs", 4);
        b.record(RULE_CAST, "time.rs", 9);
        b.record(RULE_SERDE, "event.rs", 5);
        let text = b.render();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(reparsed, b);
        assert!(!text.contains("gone.rs"), "zero counts are never recorded");
        let a = text.find("a.rs").unwrap();
        let z = text.find("z.rs").unwrap();
        assert!(a < z, "entries must be sorted");
        let output = text.find("[unstructured-output]").unwrap();
        let cast = text.find("[lossy-cast]").unwrap();
        let serde = text.find("[serde-back-compat]").unwrap();
        assert!(z < output && output < cast && cast < serde, "family order");
        assert!(
            !text.contains("[hot-path-alloc]"),
            "empty non-anchor sections are omitted"
        );
    }

    #[test]
    fn anchor_section_is_always_rendered() {
        let mut b = Baseline::default();
        b.record(RULE_CAST, "d.rs", 1);
        let text = b.render();
        assert!(text.contains("[panic-hygiene]"), "anchor always present");
        assert_eq!(Baseline::parse(&text).unwrap(), b);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[panic-hygiene]\nnot an entry\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\nbare/path.rs = 1\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = -2\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = lots\n").is_err());
        assert!(Baseline::parse("[lossy-cast]\n\"x.rs\" = ??\n").is_err());
        assert!(
            Baseline::parse("\"x.rs\" = 1\n").is_err(),
            "entry before section"
        );
        let err = Baseline::parse("[other-section]\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
        assert_eq!(err.line, 1);
        assert!(
            Baseline::parse("[lock-discipline]\n").is_err(),
            "non-ratcheted rules cannot be baselined — fix or waive"
        );
    }
}
