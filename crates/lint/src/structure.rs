//! The structural analyzer: a zero-dependency recursive-descent pass over
//! the token stream of [`crate::lexer`].
//!
//! Where the original linter saw only a flat token stream, this module
//! builds an *item tree* — modules, functions (with their `impl` owner),
//! enums with variant lists, structs with per-field attribute facts — plus
//! every `match` expression with its arm patterns, and per-function body
//! facts (call names, `.lock()` sites, statement-local lock nesting).
//! [`crate::symbols`] folds the per-file trees into a workspace symbol
//! table and call graph for the cross-file rules.
//!
//! The parser is *lossless at the top level*: every token of a file is
//! covered by exactly one top-level item span or one gap span (tokens the
//! parser chose not to claim). The structural test suite pins this tiling
//! invariant, which is what lets span-based rules trust the tree.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

/// A half-open range `[start, end)` of indices into the code-token slice
/// (comments removed) the file was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// True when `idx` lies inside the span.
    pub fn contains(&self, idx: usize) -> bool {
        (self.start..self.end).contains(&idx)
    }
}

/// What kind of item a top-level (or nested) item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { .. }` or `mod name;`
    Mod,
    /// `fn name(..) { .. }` (possibly bodyless in traits)
    Fn,
    /// `impl [Trait for] Type { .. }`
    Impl,
    /// `trait Name { .. }`
    Trait,
    /// `enum Name { .. }`
    Enum,
    /// `struct Name ..`
    Struct,
    /// `union Name { .. }`
    Union,
    /// `use ..;`
    Use,
    /// `type Alias = ..;`
    TypeAlias,
    /// `const NAME: T = ..;` / `static NAME: T = ..;`
    ConstStatic,
    /// `macro_rules! name { .. }`
    MacroDef,
    /// `extern crate ..;` / `extern "C" { .. }`
    Extern,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// What it is.
    pub kind: ItemKind,
    /// Its name, when it has one (`impl` items carry the type name).
    pub name: Option<String>,
    /// Token span, attributes included.
    pub span: Span,
    /// 1-based line of the first token.
    pub line: u32,
    /// Child items (module bodies, impl/trait members).
    pub children: Vec<Item>,
}

/// One function, flattened out of the tree with its ownership context.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` type it belongs to, if any.
    pub owner: Option<String>,
    /// Full item span (attributes through body).
    pub span: Span,
    /// Body token span (inside the braces), `None` for bodyless
    /// trait-method declarations.
    pub body: Option<Span>,
    /// 1-based line of the `fn` keyword's item.
    pub line: u32,
    /// Names invoked from the body: `foo(..)`, `x.foo(..)`, `T::foo(..)`.
    /// Macro invocations (`foo!`) never count.
    pub calls: BTreeSet<String>,
    /// `.lock(` call sites in the body: `(line, col)`.
    pub locks: Vec<(u32, u32)>,
    /// Second-and-later `.lock(` sites within a single statement:
    /// `(line, col)` — the classic inconsistent-order hazard shape.
    pub nested_locks: Vec<(u32, u32)>,
}

/// One enum with its variant list.
#[derive(Debug, Clone)]
pub struct EnumNode {
    /// Enum name.
    pub name: String,
    /// Variant names with positions, in declaration order.
    pub variants: Vec<VariantNode>,
    /// 1-based line of the `enum` keyword's item.
    pub line: u32,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct VariantNode {
    /// Variant name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One struct with per-field serde facts.
#[derive(Debug, Clone)]
pub struct StructNode {
    /// Struct name.
    pub name: String,
    /// Traits named in `#[derive(..)]` attributes.
    pub derives: Vec<String>,
    /// Whether the container carries `#[serde(default)]` / `#[serde(transparent)]`.
    pub serde_container_default: bool,
    /// Named fields (tuple/unit structs have none).
    pub fields: Vec<FieldNode>,
    /// 1-based line of the `struct` keyword's item.
    pub line: u32,
}

/// One named struct field with the serde facts the rules care about.
#[derive(Debug, Clone)]
pub struct FieldNode {
    /// Field name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `#[serde(default)]` (possibly with other args) present.
    pub serde_default: bool,
    /// `#[serde(skip)]` present — never deserialized, back-compat moot.
    pub serde_skip: bool,
    /// `#[serde(flatten)]` present — delegates to the inner type.
    pub serde_flatten: bool,
}

/// One `match` expression with its arm list.
#[derive(Debug, Clone)]
pub struct MatchNode {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// 1-based column of the `match` keyword.
    pub col: u32,
    /// Arm patterns: each arm is its `|`-alternatives, each alternative
    /// the leading path segments (`["TraceEvent", "FirstToken"]`).
    pub arms: Vec<ArmNode>,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct ArmNode {
    /// 1-based line of the first pattern token.
    pub line: u32,
    /// Path segments per `|`-alternative; a lone `_` or a bare binding
    /// yields an empty path.
    pub paths: Vec<Vec<String>>,
    /// True when any alternative is a catch-all (`_` or a bare binding).
    pub wildcard: bool,
}

/// Everything the structural pass extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileStructure {
    /// Top-level item tree.
    pub items: Vec<Item>,
    /// Token ranges not claimed by any top-level item.
    pub gaps: Vec<Span>,
    /// All functions, every nesting level, flattened.
    pub fns: Vec<FnNode>,
    /// All enums, flattened.
    pub enums: Vec<EnumNode>,
    /// All structs, flattened.
    pub structs: Vec<StructNode>,
    /// All `match` expressions, in source order.
    pub matches: Vec<MatchNode>,
    /// Every qualified `A::B` path mention (`A` capitalized), with the
    /// line of the mention — the raw material for cross-file coverage.
    pub path_mentions: Vec<(String, String, u32)>,
}

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "fn", "as", "in", "move",
    "else", "let", "mut", "ref", "await",
];

/// Parses one file's code tokens (comments already filtered out).
pub fn parse(code: &[&Tok]) -> FileStructure {
    let mut p = Parser {
        code,
        pos: 0,
        out: FileStructure::default(),
    };
    let (items, gaps) = p.parse_items(None, code.len());
    p.out.items = items;
    p.out.gaps = gaps;
    p.collect_matches();
    p.collect_path_mentions();
    p.out
}

struct Parser<'a> {
    code: &'a [&'a Tok],
    pos: usize,
    out: FileStructure,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Tok> {
        self.code.get(i).copied()
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(kw))
    }

    /// Parses items until `end` (exclusive) or a depth-0 `}` when `owner`
    /// parsing is inside braces. Returns `(items, gaps)` tiling the range.
    fn parse_items(&mut self, owner: Option<&str>, end: usize) -> (Vec<Item>, Vec<Span>) {
        let mut items = Vec::new();
        let mut gaps: Vec<Span> = Vec::new();
        let mut gap_start: Option<usize> = None;
        while self.pos < end {
            let start = self.pos;
            if let Some(item) = self.try_parse_item(owner, end) {
                if let Some(gs) = gap_start.take() {
                    gaps.push(Span {
                        start: gs,
                        end: start,
                    });
                }
                items.push(item);
            } else {
                // Unclaimed token: extend the current gap. Consume bracket
                // groups atomically so stray `{` cannot desynchronize item
                // detection inside the group.
                if gap_start.is_none() {
                    gap_start = Some(start);
                }
                let t = self.at(self.pos);
                self.pos += 1;
                if let Some(t) = t {
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                        self.skip_balanced_from(self.pos - 1, end);
                    }
                }
            }
        }
        if let Some(gs) = gap_start.take() {
            gaps.push(Span {
                start: gs,
                end: self.pos.min(end),
            });
        }
        (items, gaps)
    }

    /// Attempts to parse one item starting at `self.pos`; on failure the
    /// position is unchanged and `None` is returned.
    fn try_parse_item(&mut self, owner: Option<&str>, end: usize) -> Option<Item> {
        let start = self.pos;
        let mut i = self.pos;
        let mut attr_facts = AttrFacts::default();
        // Attributes (`#[..]` and inner `#![..]`).
        loop {
            let mut j = i;
            if self.is_punct_at(j, '#') {
                j += 1;
                if self.is_punct_at(j, '!') {
                    j += 1;
                }
                if self.is_punct_at(j, '[') {
                    let close = self.matching(j, '[', ']', end)?;
                    attr_facts.absorb(&self.code[j + 1..close]);
                    i = close + 1;
                    continue;
                }
            }
            break;
        }
        // Visibility.
        if self.is_kw(i, "pub") {
            i += 1;
            if self.is_punct_at(i, '(') {
                let close = self.matching(i, '(', ')', end)?;
                i = close + 1;
            }
        }
        // Qualifiers before `fn`.
        while self.is_kw(i, "unsafe")
            || self.is_kw(i, "async")
            || self.is_kw(i, "default")
            || (self.is_kw(i, "const") && self.is_kw(i + 1, "fn"))
            || (self.is_kw(i, "extern") && self.is_kw(i + 1, "fn"))
        {
            i += 1;
        }
        let kw = self.at(i)?;
        if kw.kind != TokKind::Ident {
            return None;
        }
        let item = match kw.text.as_str() {
            "mod" => self.parse_mod(start, i, end),
            "fn" => self.parse_fn(start, i, owner, end, &attr_facts),
            "impl" => self.parse_impl(start, i, end),
            "trait" => self.parse_container(start, i, end, ItemKind::Trait),
            "enum" => self.parse_enum(start, i, end),
            "struct" | "union" => self.parse_struct(start, i, end, &attr_facts),
            "use" => self.parse_to_semicolon(start, i, end, ItemKind::Use),
            "type" => self.parse_to_semicolon(start, i, end, ItemKind::TypeAlias),
            "const" | "static" => self.parse_to_semicolon(start, i, end, ItemKind::ConstStatic),
            "extern" => self.parse_extern(start, i, end),
            "macro_rules" => self.parse_macro_def(start, i, end),
            _ => None,
        };
        if item.is_none() {
            self.pos = start;
        }
        item
    }

    fn is_punct_at(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    /// Index of the token matching the opener at `open`, scanning to `end`.
    fn matching(&self, open: usize, o: char, c: char, end: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            let t = self.at(i)?;
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            i += 1;
        }
        None
    }

    /// First depth-0 `{` at or after `i` (tracking `(`/`[` depth), unless a
    /// depth-0 `;` comes first. Returns `(brace_index, semicolon_first)`.
    fn find_body_open(&self, mut i: usize, end: usize) -> (Option<usize>, bool) {
        let mut depth = 0i64;
        while i < end {
            let Some(t) = self.at(i) else { break };
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                return (Some(i), false);
            } else if depth == 0 && t.is_punct(';') {
                return (Some(i), true);
            }
            i += 1;
        }
        (None, false)
    }

    /// Consumes a balanced bracket group whose opener sits at `open`.
    fn skip_balanced_from(&mut self, open: usize, end: usize) {
        let Some(t) = self.at(open) else { return };
        let (o, c) = if t.is_punct('{') {
            ('{', '}')
        } else if t.is_punct('(') {
            ('(', ')')
        } else {
            ('[', ']')
        };
        match self.matching(open, o, c, end) {
            Some(close) => self.pos = close + 1,
            None => self.pos = end,
        }
    }

    fn item(&self, kind: ItemKind, name: Option<String>, start: usize, end: usize) -> Item {
        Item {
            kind,
            name,
            span: Span { start, end },
            line: self.at(start).map_or(0, |t| t.line),
            children: Vec::new(),
        }
    }

    fn parse_mod(&mut self, start: usize, kw: usize, end: usize) -> Option<Item> {
        let name = self.ident_text(kw + 1)?;
        if self.is_punct_at(kw + 2, ';') {
            self.pos = kw + 3;
            return Some(self.item(ItemKind::Mod, Some(name), start, self.pos));
        }
        if !self.is_punct_at(kw + 2, '{') {
            return None;
        }
        let close = self.matching(kw + 2, '{', '}', end)?;
        self.pos = kw + 3;
        let (children, _) = self.parse_items(None, close);
        self.pos = close + 1;
        let mut item = self.item(ItemKind::Mod, Some(name), start, self.pos);
        item.children = children;
        Some(item)
    }

    fn ident_text(&self, i: usize) -> Option<String> {
        let t = self.at(i)?;
        (t.kind == TokKind::Ident).then(|| t.text.clone())
    }

    fn parse_fn(
        &mut self,
        start: usize,
        kw: usize,
        owner: Option<&str>,
        end: usize,
        _attrs: &AttrFacts,
    ) -> Option<Item> {
        let name = self.ident_text(kw + 1)?;
        let (open, semi_first) = self.find_body_open(kw + 2, end);
        let open = open?;
        let (body, item_end) = if semi_first {
            (None, open + 1) // bodyless trait declaration; `open` is the `;`
        } else {
            let close = self.matching(open, '{', '}', end)?;
            (
                Some(Span {
                    start: open + 1,
                    end: close,
                }),
                close + 1,
            )
        };
        self.pos = item_end;
        let mut node = FnNode {
            name: name.clone(),
            owner: owner.map(|s| s.to_string()),
            span: Span {
                start,
                end: item_end,
            },
            body,
            line: self.at(start).map_or(0, |t| t.line),
            calls: BTreeSet::new(),
            locks: Vec::new(),
            nested_locks: Vec::new(),
        };
        if let Some(b) = body {
            self.scan_body(&mut node, b);
        }
        self.out.fns.push(node);
        Some(self.item(ItemKind::Fn, Some(name), start, item_end))
    }

    /// Extracts call names, lock sites, and statement-local lock nesting
    /// from a function body.
    fn scan_body(&self, node: &mut FnNode, body: Span) {
        let mut lock_in_statement = false;
        for i in body.start..body.end {
            let Some(t) = self.at(i) else { break };
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                lock_in_statement = false;
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_open = self.is_punct_at(i + 1, '(');
            if !next_open {
                continue;
            }
            if CALLISH_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            // `fn helper(` inside the body is a definition, not a call.
            if i > 0 && self.is_kw(i - 1, "fn") {
                continue;
            }
            node.calls.insert(t.text.clone());
            if t.text == "lock" && i > 0 && self.is_punct_at(i - 1, '.') {
                if lock_in_statement {
                    node.nested_locks.push((t.line, t.col));
                } else {
                    node.locks.push((t.line, t.col));
                }
                lock_in_statement = true;
            }
        }
    }

    fn parse_impl(&mut self, start: usize, kw: usize, end: usize) -> Option<Item> {
        let mut i = kw + 1;
        i = self.skip_generics(i, end);
        // Header tokens up to the body `{`; `for` splits trait from type.
        let (open, semi) = self.find_body_open(i, end);
        let open = open?;
        if semi {
            return None;
        }
        let header: Vec<&Tok> = self.code[i..open].to_vec();
        let type_name = impl_type_name(&header);
        let close = self.matching(open, '{', '}', end)?;
        self.pos = open + 1;
        let owner = type_name.clone();
        let (children, _) = self.parse_items(owner.as_deref(), close);
        self.pos = close + 1;
        let mut item = self.item(ItemKind::Impl, type_name, start, self.pos);
        item.children = children;
        Some(item)
    }

    /// A brace-bodied container whose members parse as items (`trait`).
    fn parse_container(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        kind: ItemKind,
    ) -> Option<Item> {
        let name = self.ident_text(kw + 1)?;
        let (open, semi) = self.find_body_open(kw + 2, end);
        let open = open?;
        if semi {
            self.pos = open + 1;
            return Some(self.item(kind, Some(name), start, self.pos));
        }
        let close = self.matching(open, '{', '}', end)?;
        self.pos = open + 1;
        let (children, _) = self.parse_items(Some(&name), close);
        self.pos = close + 1;
        let mut item = self.item(kind, Some(name), start, self.pos);
        item.children = children;
        Some(item)
    }

    fn parse_enum(&mut self, start: usize, kw: usize, end: usize) -> Option<Item> {
        let name = self.ident_text(kw + 1)?;
        let (open, semi) = self.find_body_open(kw + 2, end);
        let open = open?;
        if semi {
            return None;
        }
        let close = self.matching(open, '{', '}', end)?;
        let mut variants = Vec::new();
        let mut i = open + 1;
        while i < close {
            // Skip variant attributes.
            while self.is_punct_at(i, '#') && self.is_punct_at(i + 1, '[') {
                match self.matching(i + 1, '[', ']', close) {
                    Some(c) => i = c + 1,
                    None => break,
                }
            }
            let Some(t) = self.at(i) else { break };
            if t.kind == TokKind::Ident {
                variants.push(VariantNode {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                i += 1;
                // Consume payload / discriminant up to the `,` at depth 0.
                let mut depth = 0i64;
                while i < close {
                    let Some(t) = self.at(i) else { break };
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        self.pos = close + 1;
        self.out.enums.push(EnumNode {
            name: name.clone(),
            variants,
            line: self.at(start).map_or(0, |t| t.line),
        });
        Some(self.item(ItemKind::Enum, Some(name), start, self.pos))
    }

    fn parse_struct(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        attrs: &AttrFacts,
    ) -> Option<Item> {
        let is_union = self.is_kw(kw, "union");
        let name = self.ident_text(kw + 1)?;
        let (open, semi) = self.find_body_open(kw + 2, end);
        let open = open?;
        let mut fields = Vec::new();
        if semi {
            // Unit struct or tuple struct (`(`/`)` groups were skipped by
            // `find_body_open`'s depth tracking); `open` is the `;`.
            self.pos = open + 1;
        } else {
            let close = self.matching(open, '{', '}', end)?;
            let mut i = open + 1;
            while i < close {
                let mut field_attrs = AttrFacts::default();
                while self.is_punct_at(i, '#') && self.is_punct_at(i + 1, '[') {
                    match self.matching(i + 1, '[', ']', close) {
                        Some(c) => {
                            field_attrs.absorb(&self.code[i + 2..c]);
                            i = c + 1;
                        }
                        None => break,
                    }
                }
                if self.is_kw(i, "pub") {
                    i += 1;
                    if self.is_punct_at(i, '(') {
                        match self.matching(i, '(', ')', close) {
                            Some(c) => i = c + 1,
                            None => break,
                        }
                    }
                }
                let Some(t) = self.at(i) else { break };
                if t.kind == TokKind::Ident && self.is_punct_at(i + 1, ':') {
                    fields.push(FieldNode {
                        name: t.text.clone(),
                        line: t.line,
                        col: t.col,
                        serde_default: field_attrs.serde_default,
                        serde_skip: field_attrs.serde_skip,
                        serde_flatten: field_attrs.serde_flatten,
                    });
                    i += 2;
                    // Consume the type up to the `,` at depth 0.
                    let mut depth = 0i64;
                    while i < close {
                        let Some(t) = self.at(i) else { break };
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                            depth -= 1;
                        } else if depth == 0 && t.is_punct(',') {
                            i += 1;
                            break;
                        }
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            self.pos = close + 1;
        }
        self.out.structs.push(StructNode {
            name: name.clone(),
            derives: attrs.derives.clone(),
            serde_container_default: attrs.serde_container_default,
            fields,
            line: self.at(start).map_or(0, |t| t.line),
        });
        let kind = if is_union {
            ItemKind::Union
        } else {
            ItemKind::Struct
        };
        Some(self.item(kind, Some(name), start, self.pos))
    }

    /// `use`/`type`/`const`/`static` — consume through the terminating `;`
    /// at bracket depth 0.
    fn parse_to_semicolon(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        kind: ItemKind,
    ) -> Option<Item> {
        let name = self.ident_text(kw + 1);
        let mut depth = 0i64;
        let mut i = kw + 1;
        while i < end {
            let t = self.at(i)?;
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                self.pos = i + 1;
                return Some(self.item(kind, name, start, self.pos));
            }
            i += 1;
        }
        None
    }

    fn parse_extern(&mut self, start: usize, kw: usize, end: usize) -> Option<Item> {
        // `extern crate name;` or `extern "C" { .. }` (string dropped by
        // the lexer, so the block form is `extern { .. }` here).
        if self.is_kw(kw + 1, "crate") {
            return self.parse_to_semicolon(start, kw, end, ItemKind::Extern);
        }
        if self.is_punct_at(kw + 1, '{') {
            let close = self.matching(kw + 1, '{', '}', end)?;
            self.pos = close + 1;
            return Some(self.item(ItemKind::Extern, None, start, self.pos));
        }
        None
    }

    fn parse_macro_def(&mut self, start: usize, kw: usize, end: usize) -> Option<Item> {
        if !self.is_punct_at(kw + 1, '!') {
            return None;
        }
        let name = self.ident_text(kw + 2)?;
        if !self.is_punct_at(kw + 3, '{') {
            return None;
        }
        let close = self.matching(kw + 3, '{', '}', end)?;
        self.pos = close + 1;
        Some(self.item(ItemKind::MacroDef, Some(name), start, self.pos))
    }

    /// Skips a `<...>` generic parameter list starting at `i`, tolerating
    /// `->` inside bounds (`Fn() -> T`).
    fn skip_generics(&self, mut i: usize, end: usize) -> usize {
        if !self.is_punct_at(i, '<') {
            return i;
        }
        let mut depth = 0i64;
        while i < end {
            let Some(t) = self.at(i) else { break };
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                // `->` return arrows do not close generics.
                if !(i > 0 && self.is_punct_at(i - 1, '-')) {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        i
    }

    /// Scans the whole token stream for `match` expressions and records
    /// their arm lists (source order).
    fn collect_matches(&mut self) {
        let mut i = 0usize;
        let end = self.code.len();
        while i < end {
            if !self.is_kw(i, "match") {
                i += 1;
                continue;
            }
            let kw = self.at(i).map(|t| (t.line, t.col));
            // Scrutinee: to the `{` at bracket depth 0; a `;`/`=>` first
            // means this `match` is not an expression head (e.g. a raw
            // identifier artifact) — skip it.
            let (open, semi) = self.find_body_open(i + 1, end);
            let Some(open) = open else {
                i += 1;
                continue;
            };
            if semi {
                i += 1;
                continue;
            }
            let Some(close) = self.matching(open, '{', '}', end) else {
                i += 1;
                continue;
            };
            let arms = self.parse_arms(open + 1, close);
            if let Some((line, col)) = kw {
                self.out.matches.push(MatchNode { line, col, arms });
            }
            // Continue *inside* the match so nested matches are found too.
            i += 1;
        }
        self.out.matches.sort_by_key(|m| (m.line, m.col));
    }

    fn parse_arms(&self, mut i: usize, end: usize) -> Vec<ArmNode> {
        let mut arms = Vec::new();
        while i < end {
            // Skip arm attributes.
            while self.is_punct_at(i, '#') && self.is_punct_at(i + 1, '[') {
                match self.matching(i + 1, '[', ']', end) {
                    Some(c) => i = c + 1,
                    None => return arms,
                }
            }
            if i >= end {
                break;
            }
            let arm_line = self.at(i).map_or(0, |t| t.line);
            // Pattern: to `=>` at bracket depth 0.
            let pat_start = i;
            let mut depth = 0i64;
            let mut fat_arrow = None;
            while i < end {
                let Some(t) = self.at(i) else { break };
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('=') && self.is_punct_at(i + 1, '>') {
                    fat_arrow = Some(i);
                    break;
                }
                i += 1;
            }
            let Some(arrow) = fat_arrow else { break };
            let (paths, wildcard) = arm_paths(&self.code[pat_start..arrow]);
            arms.push(ArmNode {
                line: arm_line,
                paths,
                wildcard,
            });
            // Body: a braced block, or an expression up to the depth-0 `,`.
            i = arrow + 2;
            if self.is_punct_at(i, '{') {
                match self.matching(i, '{', '}', end) {
                    Some(c) => i = c + 1,
                    None => break,
                }
                if self.is_punct_at(i, ',') {
                    i += 1;
                }
            } else {
                let mut depth = 0i64;
                while i < end {
                    let Some(t) = self.at(i) else { break };
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
        }
        arms
    }

    /// Scans for `A::B` path mentions with `A` capitalized.
    fn collect_path_mentions(&mut self) {
        for i in 0..self.code.len() {
            let Some(a) = self.at(i) else { break };
            if a.kind != TokKind::Ident || !a.text.chars().next().is_some_and(|c| c.is_uppercase())
            {
                continue;
            }
            if self.is_punct_at(i + 1, ':') && self.is_punct_at(i + 2, ':') {
                if let Some(b) = self.at(i + 3) {
                    if b.kind == TokKind::Ident {
                        self.out
                            .path_mentions
                            .push((a.text.clone(), b.text.clone(), a.line));
                    }
                }
            }
        }
    }
}

/// Per-item attribute facts gathered while parsing.
#[derive(Debug, Default, Clone)]
struct AttrFacts {
    derives: Vec<String>,
    serde_default: bool,
    serde_skip: bool,
    serde_flatten: bool,
    serde_container_default: bool,
}

impl AttrFacts {
    /// Folds one attribute's inner tokens (between `[` and `]`) in.
    fn absorb(&mut self, inner: &[&Tok]) {
        let Some(head) = inner.first() else { return };
        match head.text.as_str() {
            "derive" => {
                for t in &inner[1..] {
                    if t.kind == TokKind::Ident {
                        self.derives.push(t.text.clone());
                    }
                }
            }
            "serde" => {
                for t in &inner[1..] {
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    match t.text.as_str() {
                        "default" => {
                            self.serde_default = true;
                            self.serde_container_default = true;
                        }
                        "transparent" => self.serde_container_default = true,
                        "skip" | "skip_deserializing" => self.serde_skip = true,
                        "flatten" => self.serde_flatten = true,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// Extracts the implemented type's name from an `impl` header (generics
/// already skipped): the path after a top-level `for` when present, the
/// leading path otherwise.
fn impl_type_name(header: &[&Tok]) -> Option<String> {
    let mut depth = 0i64;
    let mut for_at = None;
    for (i, t) in header.iter().enumerate() {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            if !(i > 0 && header[i - 1].is_punct('-')) {
                depth -= 1;
            }
        } else if depth == 0 && t.is_ident("for") {
            for_at = Some(i);
        }
    }
    let tail = match for_at {
        Some(i) => &header[i + 1..],
        None => header,
    };
    // Last ident of the leading path (`a::b::Type<..>` -> `Type`).
    let mut name = None;
    let mut depth = 0i64;
    for (i, t) in tail.iter().enumerate() {
        if t.is_punct('<') {
            depth += 1;
            continue;
        }
        if t.is_punct('>') {
            if !(i > 0 && tail[i - 1].is_punct('-')) {
                depth -= 1;
            }
            continue;
        }
        if depth > 0 {
            continue;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "where") {
            name = Some(t.text.clone());
        }
        if t.is_ident("where") {
            break;
        }
    }
    name
}

/// Pattern alternatives of one arm: leading path segments per
/// `|`-alternative, plus whether any alternative is a catch-all.
fn arm_paths(pat: &[&Tok]) -> (Vec<Vec<String>>, bool) {
    let mut paths = Vec::new();
    let mut wildcard = false;
    let mut depth = 0i64;
    let mut alt_start = 0usize;
    let mut alts: Vec<&[&Tok]> = Vec::new();
    for (i, t) in pat.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('|') {
            alts.push(&pat[alt_start..i]);
            alt_start = i + 1;
        }
    }
    alts.push(&pat[alt_start..]);
    for alt in alts {
        // Strip leading `&`, `ref`, `mut`, `box`.
        let mut j = 0usize;
        while j < alt.len()
            && (alt[j].is_punct('&')
                || alt[j].is_ident("ref")
                || alt[j].is_ident("mut")
                || alt[j].is_ident("box"))
        {
            j += 1;
        }
        let mut segs = Vec::new();
        while j < alt.len() && alt[j].kind == TokKind::Ident {
            segs.push(alt[j].text.clone());
            if j + 2 < alt.len() && alt[j + 1].is_punct(':') && alt[j + 2].is_punct(':') {
                j += 3;
            } else {
                break;
            }
        }
        let is_underscore = segs.len() == 1 && segs[0] == "_";
        let is_binding = segs.len() == 1
            && !alt
                .get(j + 1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('{'))
            && segs[0]
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_');
        if is_underscore || (is_binding && !alt.iter().any(|t| t.is_punct(':'))) {
            wildcard = true;
            paths.push(Vec::new());
        } else {
            paths.push(segs);
        }
    }
    (paths, wildcard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn structure(src: &str) -> FileStructure {
        let toks = lex(src);
        let code: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind != TokKind::LineComment)
            .collect();
        parse(&code)
    }

    #[test]
    fn items_tile_the_token_stream() {
        let src = "use std::fmt;\n\
                   pub struct S { pub a: u32, b: Vec<u64> }\n\
                   impl S { pub fn new() -> S { S { a: 0, b: Vec::new() } } }\n\
                   enum E { A, B(u32), C { x: u8 } }\n\
                   fn free(x: u32) -> u32 { x + 1 }\n\
                   mod inner { pub fn g() {} }\n";
        let toks = lex(src);
        let code: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind != TokKind::LineComment)
            .collect();
        let s = parse(&code);
        assert_eq!(s.items.len(), 6, "{:?}", s.items);
        assert!(s.gaps.is_empty(), "{:?}", s.gaps);
        // The spans tile [0, len) in order, without overlap.
        let mut cursor = 0usize;
        for item in &s.items {
            assert_eq!(item.span.start, cursor, "item {:?}", item.name);
            assert!(item.span.end > item.span.start);
            cursor = item.span.end;
        }
        assert_eq!(cursor, code.len());
    }

    #[test]
    fn fn_nodes_carry_owner_and_calls() {
        let s = structure(
            "impl Engine { fn step(&mut self) { self.queue.pop_due(); helper(1); } }\n\
             fn helper(x: u32) -> u32 { x }\n",
        );
        assert_eq!(s.fns.len(), 2);
        let step = &s.fns[0];
        assert_eq!(step.name, "step");
        assert_eq!(step.owner.as_deref(), Some("Engine"));
        assert!(step.calls.contains("pop_due"));
        assert!(step.calls.contains("helper"));
        let helper = &s.fns[1];
        assert_eq!(helper.name, "helper");
        assert!(helper.owner.is_none());
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let s = structure("impl TraceSink for RingSink { fn record(&mut self) {} }");
        assert_eq!(s.fns[0].owner.as_deref(), Some("RingSink"));
        let s = structure("impl<T: Clone> CalendarQueue<T> { fn pop(&mut self) {} }");
        assert_eq!(s.fns[0].owner.as_deref(), Some("CalendarQueue"));
    }

    #[test]
    fn enum_variants_are_listed() {
        let s =
            structure("pub enum TraceEvent { First, Second { x: u32, y: u64 }, Third(bool), }\n");
        assert_eq!(s.enums.len(), 1);
        let e = &s.enums[0];
        assert_eq!(e.name, "TraceEvent");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["First", "Second", "Third"]);
    }

    #[test]
    fn struct_fields_carry_serde_facts() {
        let s = structure(
            "#[derive(Debug, Serialize, Deserialize)]\n\
             pub struct R {\n\
                 pub plain: u64,\n\
                 #[serde(default)]\n\
                 pub tolerant: u32,\n\
                 #[serde(default, skip_serializing_if = \"Option::is_none\")]\n\
                 pub opt: Option<u64>,\n\
                 #[serde(flatten)]\n\
                 pub inner: Inner,\n\
                 #[serde(skip)]\n\
                 pub scratch: Vec<u8>,\n\
             }\n",
        );
        let st = &s.structs[0];
        assert!(st.derives.iter().any(|d| d == "Serialize"));
        assert!(st.derives.iter().any(|d| d == "Deserialize"));
        assert!(!st.serde_container_default);
        let by_name = |n: &str| st.fields.iter().find(|f| f.name == n).expect("field");
        assert!(!by_name("plain").serde_default);
        assert!(by_name("tolerant").serde_default);
        assert!(by_name("opt").serde_default);
        assert!(by_name("inner").serde_flatten);
        assert!(by_name("scratch").serde_skip);
    }

    #[test]
    fn container_level_serde_default_is_detected() {
        let s = structure(
            "#[derive(Serialize, Deserialize)]\n#[serde(default)]\nstruct C { a: u32 }\n",
        );
        assert!(s.structs[0].serde_container_default);
        let s =
            structure("#[derive(Serialize, Deserialize)]\n#[serde(transparent)]\nstruct T(u64);\n");
        assert!(s.structs[0].serde_container_default);
        assert!(
            s.structs[0].fields.is_empty(),
            "tuple struct has no named fields"
        );
    }

    #[test]
    fn matches_record_paths_and_wildcards() {
        let s = structure(
            "fn f(e: TraceEvent) -> u32 {\n\
                 match e {\n\
                     TraceEvent::First => 1,\n\
                     TraceEvent::Second { x, .. } | TraceEvent::Third(_) => x,\n\
                     other => 0,\n\
                 }\n\
             }\n",
        );
        assert_eq!(s.matches.len(), 1);
        let m = &s.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert_eq!(
            m.arms[0].paths,
            vec![vec!["TraceEvent".to_string(), "First".to_string()]]
        );
        assert_eq!(m.arms[1].paths.len(), 2);
        assert!(!m.arms[1].wildcard);
        assert!(m.arms[2].wildcard, "bare binding is a catch-all");
    }

    #[test]
    fn underscore_arm_is_wildcard() {
        let s = structure("fn f(x: E) { match x { E::A => {}, _ => {} } }");
        let m = &s.matches[0];
        assert!(m.arms[1].wildcard);
        assert!(!m.arms[0].wildcard);
    }

    #[test]
    fn nested_matches_are_found() {
        let s = structure(
            "fn f(a: E, b: E) { match a { E::A => match b { E::B => {}, _ => {} }, _ => {} } }",
        );
        assert_eq!(s.matches.len(), 2);
    }

    #[test]
    fn lock_sites_and_nesting() {
        let s = structure(
            "fn one(&self) { let Ok(g) = self.shared.lock() else { return }; g.push(1); }\n\
             fn nested(&self) { let x = a.lock().unwrap().merge(b.lock().unwrap()); }\n\
             fn sequential(&self) { a.lock(); b.lock(); }\n",
        );
        assert_eq!(s.fns[0].locks.len(), 1);
        assert!(s.fns[0].nested_locks.is_empty());
        assert_eq!(s.fns[1].locks.len(), 1);
        assert_eq!(s.fns[1].nested_locks.len(), 1, "same-statement second lock");
        assert_eq!(
            s.fns[2].locks.len(),
            2,
            "`;`-separated locks are sequential"
        );
        assert!(s.fns[2].nested_locks.is_empty());
    }

    #[test]
    fn path_mentions_are_collected() {
        let s = structure("fn f() { let x = TraceEvent::FirstToken; Other::thing(); }");
        assert!(s
            .path_mentions
            .iter()
            .any(|(a, b, _)| a == "TraceEvent" && b == "FirstToken"));
        assert!(s.path_mentions.iter().any(|(a, _, _)| a == "Other"));
    }

    #[test]
    fn bodyless_trait_methods_do_not_swallow_the_file() {
        let s = structure("trait S { fn step(&mut self) -> bool; }\nfn after() { real(); }\n");
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns[0].body.is_none());
        assert!(s.fns[1].calls.contains("real"));
    }

    #[test]
    fn generics_and_where_clauses_parse() {
        let s = structure(
            "impl<F: Fn() -> u64> Holder<F> { fn call(&self) -> u64 { (self.f)() } }\n\
             pub fn generic<T: Clone>(x: T) -> T where T: Send { x.clone() }\n",
        );
        assert_eq!(s.fns[0].owner.as_deref(), Some("Holder"));
        assert_eq!(s.fns[1].name, "generic");
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let s = structure("fn f() { println!(\"x\"); writeln!(w, \"y\"); real_call(); }");
        assert!(!s.fns[0].calls.contains("println"));
        assert!(!s.fns[0].calls.contains("writeln"));
        assert!(s.fns[0].calls.contains("real_call"));
    }
}
