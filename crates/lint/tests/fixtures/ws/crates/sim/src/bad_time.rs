//! Fixture: wall-clock and entropy sources in a determinism crate.

pub fn elapsed_us() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
