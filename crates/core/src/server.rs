//! The high-level serving facade.
//!
//! [`QoServe`] wraps a replica engine (or a small shared cluster) behind
//! the API shape the paper describes for its vLLM extension: requests are
//! submitted together with their QoS contract (TTFT/TBT or TTLT targets
//! plus a priority hint), and the system reports per-request outcomes and
//! an SLO summary.

use qoserve_cluster::{run_shared, ClusterConfig, SchedulerSpec};
use qoserve_metrics::{RequestOutcome, SloReport};
use qoserve_perf::HardwareConfig;
use qoserve_sim::{SeedStream, SimTime};
use qoserve_workload::{Priority, QosClass, QosTier, RequestId, RequestSpec, Slo, TierId, Trace};

/// Builder-style request description.
///
/// # Example
///
/// ```
/// use qoserve::Request;
///
/// let spec = Request::interactive(512, 100)
///     .ttft_secs(3.0)
///     .tbt_ms(25.0)
///     .priority_low()
///     .arriving_at_secs(1.5)
///     .into_spec(qoserve_workload::RequestId(7));
/// assert_eq!(spec.prompt_tokens, 512);
/// assert!(spec.class().is_interactive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    prompt_tokens: u32,
    decode_tokens: u32,
    class: QosClass,
    tier: TierId,
    priority: Priority,
    arrival: SimTime,
    app_id: u32,
}

impl Request {
    /// An interactive request (defaults: Table 3's Q1 SLOs — 6 s TTFT,
    /// 50 ms TBT).
    pub fn interactive(prompt_tokens: u32, decode_tokens: u32) -> Self {
        Request {
            prompt_tokens,
            decode_tokens,
            class: QosClass::interactive_secs_ms(6.0, 50.0),
            tier: TierId::Q1,
            priority: Priority::Important,
            arrival: SimTime::ZERO,
            app_id: 1,
        }
    }

    /// A non-interactive batch request (default: 600 s TTLT, tier Q2).
    pub fn batch(prompt_tokens: u32, decode_tokens: u32) -> Self {
        Request {
            prompt_tokens,
            decode_tokens,
            class: QosClass::non_interactive_secs(600.0),
            tier: TierId::Q2,
            priority: Priority::Important,
            arrival: SimTime::ZERO,
            app_id: 2,
        }
    }

    /// Sets the TTFT target (interactive requests only — converts the
    /// class if needed, keeping the current TBT or the 50 ms default).
    pub fn ttft_secs(mut self, secs: f64) -> Self {
        let tbt = self
            .class
            .tbt()
            .unwrap_or(qoserve_sim::SimDuration::from_millis(50));
        self.class = QosClass::Interactive {
            ttft: qoserve_sim::SimDuration::from_secs_f64(secs),
            tbt,
        };
        self
    }

    /// Sets the TBT target (interactive requests only).
    pub fn tbt_ms(mut self, ms: f64) -> Self {
        let ttft = self
            .class
            .ttft()
            .unwrap_or(qoserve_sim::SimDuration::from_secs(6));
        self.class = QosClass::Interactive {
            ttft,
            tbt: qoserve_sim::SimDuration::from_millis_f64(ms),
        };
        self
    }

    /// Sets the TTLT target and makes the request non-interactive.
    pub fn ttlt_secs(mut self, secs: f64) -> Self {
        self.class = QosClass::non_interactive_secs(secs);
        self
    }

    /// Assigns the request to a tier id (used in reports).
    pub fn tier(mut self, tier: TierId) -> Self {
        self.tier = tier;
        self
    }

    /// Marks the request as low priority (preferentially relegated under
    /// overload).
    pub fn priority_low(mut self) -> Self {
        self.priority = Priority::Low;
        self
    }

    /// Sets the arrival time.
    pub fn arriving_at_secs(mut self, secs: f64) -> Self {
        self.arrival = SimTime::from_secs_f64(secs);
        self
    }

    /// Sets the application id feeding the decode-length history.
    pub fn app(mut self, app_id: u32) -> Self {
        self.app_id = app_id;
        self
    }

    /// Finalises into a [`RequestSpec`] with the given id.
    pub fn into_spec(self, id: RequestId) -> RequestSpec {
        RequestSpec {
            id,
            arrival: self.arrival,
            prompt_tokens: self.prompt_tokens,
            decode_tokens: self.decode_tokens,
            slo: Slo {
                tier: QosTier::new(self.tier, self.class),
                priority: self.priority,
            },
            app_id: self.app_id,
        }
    }
}

/// Result of a [`QoServe::run`]: per-request outcomes plus the SLO
/// summary.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// One outcome per submitted request, ordered by submission.
    pub outcomes: Vec<RequestOutcome>,
    /// Violation/latency breakdown over the outcomes.
    pub slo: SloReport,
}

/// Builder for [`QoServe`].
#[derive(Debug, Clone)]
pub struct QoServeBuilder {
    hardware: HardwareConfig,
    scheduler: SchedulerSpec,
    replicas: u32,
    seed: u64,
    noise_sigma: f64,
}

impl QoServeBuilder {
    /// Sets the deterministic seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the scheduler (default: QoServe with paper settings).
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the replica count (default 1).
    pub fn replicas(mut self, replicas: u32) -> Self {
        assert!(replicas > 0, "at least one replica is required");
        self.replicas = replicas;
        self
    }

    /// Sets execution-noise sigma (default 0.02).
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma.max(0.0);
        self
    }

    /// Builds the server.
    pub fn build(self) -> QoServe {
        QoServe {
            hardware: self.hardware,
            scheduler: self.scheduler,
            replicas: self.replicas,
            seed: self.seed,
            noise_sigma: self.noise_sigma,
            pending: Vec::new(),
            next_id: 0,
        }
    }
}

/// A QoS-aware serving instance (one or more replicas behind a
/// round-robin router).
#[derive(Debug, Clone)]
pub struct QoServe {
    hardware: HardwareConfig,
    scheduler: SchedulerSpec,
    replicas: u32,
    seed: u64,
    noise_sigma: f64,
    pending: Vec<RequestSpec>,
    next_id: u64,
}

impl QoServe {
    /// Starts building a server over `hardware`.
    pub fn builder(hardware: HardwareConfig) -> QoServeBuilder {
        QoServeBuilder {
            hardware,
            scheduler: SchedulerSpec::qoserve(),
            replicas: 1,
            seed: 0,
            noise_sigma: 0.02,
        }
    }

    /// Submits a request; returns its assigned id.
    pub fn submit(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push(request.into_spec(id));
        id
    }

    /// Submits a pre-built spec (e.g. from a [`Trace`]).
    pub fn submit_spec(&mut self, mut spec: RequestSpec) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        spec.id = id;
        self.pending.push(spec);
        id
    }

    /// Number of submitted-but-not-yet-run requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Runs everything submitted so far to completion and clears the
    /// queue. Deterministic for a given builder seed.
    pub fn run(&mut self) -> RunReport {
        let specs = std::mem::take(&mut self.pending);
        let trace = Trace::from_requests("submitted", specs);
        let mut config = ClusterConfig::new(self.hardware.clone());
        config.noise_sigma = self.noise_sigma;
        let outcomes = run_shared(
            &trace,
            self.replicas,
            &self.scheduler,
            &config,
            &SeedStream::new(self.seed),
        );
        let slo = SloReport::compute(&outcomes, trace.long_prompt_threshold());
        RunReport { outcomes, slo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut server = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1())
            .seed(1)
            .build();
        let chat = server.submit(Request::interactive(1_024, 50).arriving_at_secs(0.1));
        let batch = server.submit(Request::batch(4_096, 100).arriving_at_secs(0.2));
        assert_eq!(server.pending(), 2);
        let report = server.run();
        assert_eq!(server.pending(), 0);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.outcomes[0].spec.id, chat);
        assert_eq!(report.outcomes[1].spec.id, batch);
        assert_eq!(report.slo.violations, 0);
    }

    #[test]
    fn request_builder_composes() {
        let spec = Request::interactive(100, 10)
            .ttft_secs(2.0)
            .tbt_ms(20.0)
            .tier(TierId(5))
            .priority_low()
            .app(9)
            .arriving_at_secs(3.0)
            .into_spec(RequestId(1));
        assert_eq!(
            spec.class().ttft(),
            Some(qoserve_sim::SimDuration::from_secs(2))
        );
        assert_eq!(
            spec.class().tbt(),
            Some(qoserve_sim::SimDuration::from_millis(20))
        );
        assert_eq!(spec.tier(), TierId(5));
        assert_eq!(spec.priority(), Priority::Low);
        assert_eq!(spec.app_id, 9);
        assert_eq!(spec.arrival, SimTime::from_secs(3));
    }

    #[test]
    fn ttlt_converts_class() {
        let spec = Request::interactive(100, 10)
            .ttlt_secs(900.0)
            .into_spec(RequestId(0));
        assert!(!spec.class().is_interactive());
        assert_eq!(
            spec.class().ttlt(),
            Some(qoserve_sim::SimDuration::from_secs(900))
        );
    }

    #[test]
    fn ttft_on_batch_converts_to_interactive() {
        let spec = Request::batch(100, 10)
            .ttft_secs(1.0)
            .into_spec(RequestId(0));
        assert!(spec.class().is_interactive());
        assert_eq!(
            spec.class().tbt(),
            Some(qoserve_sim::SimDuration::from_millis(50))
        );
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let run_once = |seed: u64| {
            let mut s = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1())
                .seed(seed)
                .build();
            for i in 0..10 {
                s.submit(Request::interactive(500, 20).arriving_at_secs(i as f64 * 0.3));
            }
            s.run().outcomes
        };
        assert_eq!(run_once(3), run_once(3));
    }

    #[test]
    fn multi_replica_round_robin() {
        let mut s = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1())
            .replicas(2)
            .build();
        for i in 0..6 {
            s.submit(Request::interactive(500, 5).arriving_at_secs(i as f64 * 0.1));
        }
        let report = s.run();
        let replicas: std::collections::BTreeSet<u32> =
            report.outcomes.iter().map(|o| o.replica).collect();
        assert_eq!(replicas.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1()).replicas(0);
    }
}
