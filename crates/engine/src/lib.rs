//! Replica serving engine for the QoServe reproduction.
//!
//! [`ReplicaEngine`] is the simulator's stand-in for one vLLM/Sarathi
//! replica: it owns the request lifecycle (prefill → decode → completion),
//! the KV-cache budget, and the iteration loop. Every iteration it asks
//! its [`Scheduler`](qoserve_sched::Scheduler) for a batch plan, executes
//! the mixed batch against the calibrated latency model (plus execution
//! noise), advances simulated time by the batch latency, and emits output
//! tokens — recording TTFT, per-token lateness against the Eq. 2/3
//! deadlines, and TBT along the way.
//!
//! * [`kv`] — token-granular KV-cache accounting with decode-growth
//!   reservation (decodes are never preempted, §3.4, so their future
//!   growth is reserved at admission).
//! * [`health`] — the rolling per-iteration health ring and
//!   [`HealthSnapshot`] API feeding the cluster layer's circuit breakers.
//! * [`noise`] — multiplicative log-normal execution-time noise.
//! * [`replica`] — the engine itself, including the availability state
//!   machine ([`ReplicaState`]) and crash-orphan surfacing
//!   ([`OrphanedJob`]) used by the fault-injection experiments.
//! * [`disagg`] — helpers for PD-disaggregated prefill-node serving
//!   (§4.1.3).

pub mod disagg;
pub mod health;
pub mod kv;
pub mod noise;
pub mod replica;

pub use disagg::{disagg_chunk_limits, to_prefill_only_trace, DISAGG_CHUNK};
pub use health::{HealthRing, HealthSample, HealthSnapshot, HEALTH_WINDOW};
pub use kv::KvCache;
pub use noise::ExecutionNoise;
pub use replica::{
    sustainable_decode_batch, BatchRecord, OrphanedJob, ReplicaConfig, ReplicaEngine, ReplicaState,
};
