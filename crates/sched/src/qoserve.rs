//! The QoServe scheduler (Algorithm 1 of the paper).
//!
//! Three techniques compose here:
//!
//! * **Hybrid prioritization** (§3.4, Eq. 4/5): priority interpolates
//!   between EDF and SRPF —
//!   `P = t_arrival + SLO_TTFT + α · prefill_rem` for interactive jobs and
//!   `P = t_arrival + SLO_TTLT + α · (prefill_rem + decode_est)` for
//!   non-interactive ones, with `decode_est` the per-application
//!   mean + 2σ history. `α = 0` degenerates to EDF; large α to SRPF.
//! * **Dynamic chunking** (§3.3, §3.6.1): the prefill token budget is the
//!   largest chunk whose predicted iteration latency fits within the
//!   minimum slack of the decode pool.
//! * **Eager relegation** (§3.4): jobs that have violated — or are about
//!   to violate — their TTFT/TTLT deadline are demoted behind all live
//!   work and serviced opportunistically; under backlog pressure,
//!   low-priority (free-tier) jobs are shed first so important ones keep
//!   their SLOs.
//!
//! Selective preemption (§3.4) needs no extra machinery: a partially
//! prefilled job simply loses the next batch to any higher-priority
//! arrival, while decodes are never revisited at all.

use qoserve_perf::{
    AdaptiveMargin, AdaptiveMarginConfig, BatchProfile, ChunkBudget, ChunkLimits, LatencyPredictor,
};
use qoserve_sim::float::priority_micros;
use qoserve_sim::{SimDuration, SimTime};
use qoserve_trace::{RelegationReason, TraceEvent, Tracer, RELEGATED_TIER};
use qoserve_workload::{Priority, RequestSpec};

use crate::estimate::ProcessingEstimator;
use crate::job::{min_decode_slack, DecodeJob, PrefillJob};
use crate::queue::JobQueue;
use crate::{BatchPlan, Constraints, PrefillAssignment, Scheduler};

/// How the hybrid-prioritization α is chosen.
///
/// The paper sweeps α offline for fixed-QPS runs (8 ms/token was best) and
/// uses load-adaptive tuning for variable load: 1 ms/token at low load to
/// protect tail latency, 8 ms/token under backlog to shed quadratic load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaPolicy {
    /// Constant α in milliseconds per token.
    Fixed {
        /// α value.
        ms_per_token: f64,
    },
    /// Switch between `low_ms` and `high_ms` when the live prefill backlog
    /// crosses `backlog_tokens` (with 20 % hysteresis).
    LoadAdaptive {
        /// α at low load.
        low_ms: f64,
        /// α under backlog.
        high_ms: f64,
        /// Backlog threshold in pending prompt tokens.
        backlog_tokens: u64,
    },
}

impl AlphaPolicy {
    /// The paper's fixed-QPS setting: α = 8 ms/token.
    pub fn paper_fixed() -> Self {
        AlphaPolicy::Fixed { ms_per_token: 8.0 }
    }

    /// The paper's variable-QPS setting: 1 ms/token at low load,
    /// 8 ms/token under backlog.
    pub fn paper_adaptive() -> Self {
        AlphaPolicy::LoadAdaptive {
            low_ms: 1.0,
            high_ms: 8.0,
            backlog_tokens: 60_000,
        }
    }
}

/// Configuration of [`QoServeScheduler`]. Feature switches exist so the
/// ablation study (Table 5) can enable dynamic chunking, eager
/// relegation, and hybrid prioritization one at a time.
#[derive(Debug, Clone)]
pub struct QoServeConfig {
    /// Hybrid-prioritization α policy. Use `Fixed { 0.0 }` to disable
    /// hybrid prioritization (pure EDF ordering).
    pub alpha: AlphaPolicy,
    /// Enables eager relegation.
    pub eager_relegation: bool,
    /// Enables dynamic chunking; when off, `fixed_chunk` is used like a
    /// Sarathi baseline.
    pub dynamic_chunking: bool,
    /// Token budget when dynamic chunking is disabled.
    pub fixed_chunk: u32,
    /// Bounds for the dynamic-chunk search.
    pub chunk_limits: ChunkLimits,
    /// Backlog drain time beyond which low-priority jobs are shed
    /// preferentially (the free-tier relegation of §3.4). The default is
    /// the strictest TTFT SLO — if the backlog already exceeds it, new
    /// interactive arrivals are doomed without shedding.
    pub shed_backlog: SimDuration,
    /// When set, the scheduler runs the online adaptive-margin controller
    /// against per-iteration `(predicted, observed)` pairs delivered via
    /// [`Scheduler::on_iteration`]: the chunk budget's safety margin
    /// widens under misprediction, decays back when calm, and the forest
    /// predictor falls back to its analytical companion under sustained
    /// gross error. `None` (the default) is today's static behaviour —
    /// existing experiments are bit-identical.
    pub adaptive: Option<AdaptiveMarginConfig>,
}

impl Default for QoServeConfig {
    fn default() -> Self {
        QoServeConfig {
            alpha: AlphaPolicy::paper_fixed(),
            eager_relegation: true,
            dynamic_chunking: true,
            fixed_chunk: 256,
            chunk_limits: ChunkLimits::default(),
            shed_backlog: SimDuration::from_secs(6),
            adaptive: None,
        }
    }
}

impl QoServeConfig {
    /// Table 5's "QoServe (DC)" row: dynamic chunking only, on top of EDF.
    pub fn ablation_dc() -> Self {
        QoServeConfig {
            alpha: AlphaPolicy::Fixed { ms_per_token: 0.0 },
            eager_relegation: false,
            ..Default::default()
        }
    }

    /// Table 5's "QoServe (DC+ER)" row.
    pub fn ablation_dc_er() -> Self {
        QoServeConfig {
            alpha: AlphaPolicy::Fixed { ms_per_token: 0.0 },
            eager_relegation: true,
            ..Default::default()
        }
    }

    /// Table 5's full system: DC + ER + hybrid prioritization.
    pub fn ablation_full() -> Self {
        QoServeConfig::default()
    }

    /// The full system plus the online adaptive margin (the resilience
    /// layer's default pipeline). The controller's base margin is
    /// re-anchored to the predictor's margin at construction.
    pub fn adaptive() -> Self {
        QoServeConfig {
            adaptive: Some(AdaptiveMarginConfig::default()),
            ..Default::default()
        }
    }
}

/// The QoServe scheduler.
///
/// # Example
///
/// ```
/// use qoserve_perf::{HardwareConfig, LatencyPredictor};
/// use qoserve_sched::{QoServeConfig, QoServeScheduler, Scheduler};
///
/// let hw = HardwareConfig::llama3_8b_a100_tp1();
/// let sched = QoServeScheduler::new(
///     QoServeConfig::default(),
///     LatencyPredictor::analytical(&hw),
/// );
/// assert_eq!(sched.name(), "QoServe");
/// ```
#[derive(Debug, Clone)]
pub struct QoServeScheduler {
    config: QoServeConfig,
    queue: JobQueue,
    budget: ChunkBudget,
    estimator: ProcessingEstimator,
    /// Current α in µs per token.
    alpha_us: f64,
    /// Count of relegations performed (diagnostics / tests).
    relegations: u64,
    /// Chunk budget chosen by the last `plan_batch` call (Fig. 9 traces).
    last_chunk_budget: u32,
    /// Online adaptive-margin controller (None = static margin).
    adaptive: Option<AdaptiveMargin>,
    /// Decision tracer (disabled by default: zero behavioural drift).
    tracer: Tracer,
}

impl QoServeScheduler {
    /// Creates the scheduler around a latency predictor (forest or
    /// analytical — see [`LatencyPredictor`]).
    pub fn new(config: QoServeConfig, predictor: LatencyPredictor) -> Self {
        let estimator = ProcessingEstimator::from_predictor(&predictor);
        let alpha_us = match config.alpha {
            AlphaPolicy::Fixed { ms_per_token } => ms_per_token * 1e3,
            AlphaPolicy::LoadAdaptive { low_ms, .. } => low_ms * 1e3,
        };
        let limits = config.chunk_limits;
        let adaptive = config.adaptive.map(|mut cfg| {
            // Anchor the controller at the predictor's static margin so
            // the calm state is bit-identical to the static pipeline.
            cfg.base = predictor.margin();
            AdaptiveMargin::new(cfg)
        });
        QoServeScheduler {
            config,
            queue: JobQueue::new(),
            budget: ChunkBudget::new(predictor, limits),
            estimator,
            alpha_us,
            relegations: 0,
            last_chunk_budget: 0,
            adaptive,
            tracer: Tracer::disabled(),
        }
    }

    /// Current α in ms/token.
    pub fn alpha_ms(&self) -> f64 {
        self.alpha_us / 1e3
    }

    /// Total relegations performed so far.
    pub fn relegation_count(&self) -> u64 {
        self.relegations
    }

    /// Chunk budget used by the most recent batch (Fig. 9's trace).
    pub fn last_chunk_budget(&self) -> u32 {
        self.last_chunk_budget
    }

    /// Access to the processing estimator (tests).
    pub fn estimator(&self) -> &ProcessingEstimator {
        &self.estimator
    }

    /// The adaptive-margin controller, when enabled (tests/diagnostics).
    pub fn adaptive_margin(&self) -> Option<&AdaptiveMargin> {
        self.adaptive.as_ref()
    }

    /// Eq. 4 / Eq. 5: the hybrid priority key in µs (smaller = sooner).
    fn priority_key(&self, job: &PrefillJob) -> i64 {
        hybrid_key(&self.estimator, self.alpha_us, job)
    }

    /// Live (non-relegated) backlog, in pending prompt tokens (O(1)).
    fn live_backlog_tokens(&self) -> u64 {
        self.queue.live_tokens()
    }

    /// Whether the live backlog already exceeds the shedding threshold —
    /// the overload signal that triggers preferential relegation of
    /// low-priority jobs.
    fn backlog_overloaded(&self) -> bool {
        let drain = self
            .estimator
            .prefill_time(self.live_backlog_tokens().min(u32::MAX as u64) as u32);
        drain > self.config.shed_backlog
    }

    /// The violation check of Algorithm 1 (line 12): should this job be
    /// relegated *now*?
    ///
    /// * Any job whose deadline has passed, or would pass within one
    ///   typical iteration, has "already violated or will violate in the
    ///   current iteration".
    /// * Any job that cannot finish before its deadline even if scheduled
    ///   immediately ("we know it will miss") is hopeless.
    /// * Low-priority jobs are additionally shed whenever the backlog is
    ///   beyond capacity, protecting important requests (§3.4).
    fn should_relegate(&self, job: &PrefillJob, now: SimTime, overloaded: bool) -> bool {
        self.relegation_reason(job, now, overloaded).is_some()
    }

    /// Like [`should_relegate`](Self::should_relegate), but reports *why*
    /// the job is being relegated (trace attribution).
    fn relegation_reason(
        &self,
        job: &PrefillJob,
        now: SimTime,
        overloaded: bool,
    ) -> Option<RelegationReason> {
        if !self.config.eager_relegation {
            return None;
        }
        let deadline = job.urgency_deadline();
        let one_iteration = self.estimator.decode_time(1.0);
        if now + one_iteration >= deadline {
            // Already violated / violates this iteration.
            return Some(RelegationReason::DeadlinePassed);
        }
        let remaining = if job.spec.class().is_interactive() {
            self.estimator.prefill_time(job.remaining_tokens())
        } else {
            self.estimator
                .remaining_time(job.spec.app_id, job.remaining_tokens())
        };
        if now + remaining > deadline {
            // Hopeless even if scheduled immediately.
            return Some(RelegationReason::Hopeless);
        }
        // Preferential shedding of low-priority (free-tier) work: under
        // backlog pressure, relegate a low-priority job whose deadline is
        // infeasible once the queue *ahead of it* is accounted for. The
        // queue-ahead estimate is priority-aware (tiers with stricter SLOs
        // jump the queue under hybrid prioritization), so feasible
        // low-priority work in an absorbable surge is left alone.
        if job.priority() == Priority::Low && overloaded {
            let ahead = self.queue.live_tokens_ahead_of(job).min(u32::MAX as u64) as u32;
            let queue_delay = self.estimator.prefill_time(ahead);
            if now + queue_delay + remaining > deadline {
                return Some(RelegationReason::OverloadShed);
            }
        }
        None
    }

    /// Computes the prefill token budget for this iteration.
    fn compute_budget(&mut self, now: SimTime, decodes: &[DecodeJob]) -> u32 {
        if !self.config.dynamic_chunking {
            return self.config.fixed_chunk.saturating_sub(decodes.len() as u32);
        }
        let slack = min_decode_slack(decodes, now);
        let ctx_total: u64 = decodes.iter().map(|d| d.context_len as u64).sum();
        // Context depth of the job the chunk will most likely go to.
        let head_context = self.queue.peek().map_or(0, |j| j.prefill_done);
        self.budget
            .prefill_budget(decodes.len() as u32, ctx_total, head_context, slack)
    }

    /// Updates α under the load-adaptive policy; rekeys the queue when α
    /// actually changes.
    fn update_alpha(&mut self) {
        if let AlphaPolicy::LoadAdaptive {
            low_ms,
            high_ms,
            backlog_tokens,
        } = self.config.alpha
        {
            let backlog = self.live_backlog_tokens();
            let target_us = if backlog > backlog_tokens {
                high_ms * 1e3
            } else if backlog < backlog_tokens * 4 / 5 {
                low_ms * 1e3
            } else {
                self.alpha_us // hysteresis band: keep current
            };
            if (target_us - self.alpha_us).abs() > f64::EPSILON {
                self.alpha_us = target_us;
                // Keys embed α — rebuild them. Borrow-splitting: compute
                // keys with a local closure over the needed fields.
                let estimator = self.estimator.clone();
                let alpha_us = self.alpha_us;
                self.queue
                    .rekey(|job| hybrid_key(&estimator, alpha_us, job));
            }
        }
    }
}

/// The shared Eq. 4 / Eq. 5 key computation: deadline plus α-weighted
/// remaining work, in µs. Routed through [`priority_micros`] so a NaN
/// estimate (e.g. a poisoned decode history) sorts *last* instead of
/// being cast to 0 and seizing the queue front.
fn hybrid_key(estimator: &ProcessingEstimator, alpha_us: f64, job: &PrefillJob) -> i64 {
    let (edf_term, srpf_term) = hybrid_terms(estimator, alpha_us, job);
    priority_micros(edf_term + srpf_term)
}

/// The two additive terms of the hybrid key, in µs: the EDF term (the
/// urgency deadline) and the SRPF term (α-weighted remaining work).
/// Split out so the tracer can attribute a priority decision to its
/// deadline vs. work components.
fn hybrid_terms(estimator: &ProcessingEstimator, alpha_us: f64, job: &PrefillJob) -> (f64, f64) {
    let edf_term = job.urgency_deadline().as_micros() as f64;
    let work_tokens = if job.spec.class().is_interactive() {
        job.remaining_tokens() as f64
    } else {
        job.remaining_tokens() as f64 + estimator.estimated_decode_tokens(job.spec.app_id)
    };
    (edf_term, alpha_us * work_tokens)
}

impl Scheduler for QoServeScheduler {
    fn name(&self) -> &str {
        "QoServe"
    }

    fn on_arrival(&mut self, job: PrefillJob, _now: SimTime) {
        if self.tracer.enabled() {
            let (edf_term, srpf_term) = hybrid_terms(&self.estimator, self.alpha_us, &job);
            self.tracer.emit(
                Some(job.id().0),
                TraceEvent::PriorityScored {
                    edf_term,
                    srpf_term,
                    alpha: self.alpha_us,
                },
            );
        }
        let key = self.priority_key(&job);
        self.queue.push(job, key);
    }

    fn plan_batch(
        &mut self,
        now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        self.update_alpha();
        let budget_tokens = self.compute_budget(now, decodes);
        self.last_chunk_budget = budget_tokens;
        let mut plan = BatchPlan {
            prefill: Vec::new(),
            token_budget: budget_tokens,
        };
        if !constraints.allow_prefill || budget_tokens == 0 {
            return plan;
        }

        let overloaded = self.backlog_overloaded();
        let mut remaining = budget_tokens;
        let mut kv_left = constraints.kv_headroom_tokens;
        let mut new_started = 0usize;

        // Algorithm 1 lines 10-23: fill the budget from the priority
        // queue, relegating violators as they surface.
        while remaining > 0 && kv_left > 0 {
            let mut job = match self.queue.pop() {
                Some(j) => j,
                None => break,
            };
            if job.prefill_done == 0 && new_started >= constraints.max_new_requests {
                let key = self.priority_key(&job);
                self.queue.reinsert(job, key);
                break;
            }
            if !job.relegated {
                if let Some(reason) = self.relegation_reason(&job, now, overloaded) {
                    job.relegated = true;
                    self.relegations += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(
                            Some(job.id().0),
                            TraceEvent::Relegated {
                                from_tier: job.spec.tier().0,
                                to_tier: RELEGATED_TIER,
                                reason,
                            },
                        );
                    }
                    let key = self.priority_key(&job);
                    self.queue.reinsert(job, key);
                    continue;
                }
            }
            let take = remaining
                .min(job.remaining_tokens())
                .min(kv_left.min(u32::MAX as u64) as u32);
            if take == 0 {
                let key = self.priority_key(&job);
                self.queue.reinsert(job, key);
                break;
            }
            if job.prefill_done == 0 {
                new_started += 1;
            }
            let context_before = job.prefill_done;
            job.prefill_done += take;
            remaining -= take;
            kv_left -= take as u64;
            plan.prefill.push(PrefillAssignment {
                id: job.id(),
                tokens: take,
                context_before,
                completes_prefill: job.is_complete(),
                relegated: job.relegated,
            });
            if !job.is_complete() {
                let key = self.priority_key(&job);
                self.queue.reinsert(job, key);
            }
        }
        plan
    }

    fn on_completion(&mut self, spec: &RequestSpec, observed_decode_tokens: u32) {
        self.estimator
            .record_decode(spec.app_id, observed_decode_tokens);
    }

    fn on_iteration(&mut self, batch: &BatchProfile, observed: SimDuration, _now: SimTime) {
        let Some(am) = self.adaptive.as_mut() else {
            return;
        };
        // Ratio against the margin-free prediction: the tracker measures
        // *model* error, which the margin then covers.
        let predicted = self.budget.predictor().predict_raw_us(batch);
        if am.record(predicted, observed.as_micros() as f64) {
            self.budget.set_margin(am.current());
            if am.fallback_engaged() {
                self.budget.engage_fallback();
            }
            match am.recalibration_factor() {
                Some(f) => self.estimator.recalibrate(f),
                None => self.estimator.restore_base_rates(),
            }
            if self.tracer.enabled() {
                self.tracer.emit(
                    None,
                    TraceEvent::MarginAdjusted {
                        margin: am.current(),
                        fallback: am.fallback_engaged(),
                    },
                );
            }
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.budget.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    fn pending_prefills(&self) -> usize {
        self.queue.len()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.queue.pending_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        self.queue.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn predictor() -> LatencyPredictor {
        LatencyPredictor::analytical(&HardwareConfig::llama3_8b_a100_tp1())
    }

    fn sched(config: QoServeConfig) -> QoServeScheduler {
        QoServeScheduler::new(config, predictor())
    }

    fn spec(id: u64, arrival_secs: f64, prompt: u32, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs_f64(arrival_secs),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    fn decode(id: u64, ctx: u32, deadline: SimTime) -> DecodeJob {
        DecodeJob {
            id: RequestId(id),
            context_len: ctx,
            next_token_deadline: deadline,
            relegated: false,
        }
    }

    #[test]
    fn hybrid_priority_interpolates_edf_and_srpf() {
        // Two interactive jobs: A has the earlier deadline but a huge
        // prompt; B arrived 2s later with a tiny prompt.
        let a = PrefillJob::new(spec(0, 0.0, 20_000, QosTier::paper_q1()));
        let b = PrefillJob::new(spec(1, 2.0, 100, QosTier::paper_q1()));

        // α = 0 (EDF): A wins on deadline.
        let edf = sched(QoServeConfig {
            alpha: AlphaPolicy::Fixed { ms_per_token: 0.0 },
            ..Default::default()
        });
        assert!(edf.priority_key(&a) < edf.priority_key(&b));

        // α = 8 ms/token: B's 160x smaller prompt dominates the 2s gap.
        let hybrid = sched(QoServeConfig::default());
        assert!(hybrid.priority_key(&b) < hybrid.priority_key(&a));
    }

    #[test]
    fn eq5_uses_decode_estimate_for_non_interactive() {
        let mut s = sched(QoServeConfig::default());
        let job = PrefillJob::new(spec(0, 0.0, 1_000, QosTier::paper_q2()));
        let before = s.priority_key(&job);
        // Teach the estimator that app 0 generates long outputs.
        for _ in 0..20 {
            s.on_completion(&job.spec, 2_000);
        }
        let after = s.priority_key(&job);
        assert!(
            after > before,
            "longer decode history must worsen (raise) the priority key"
        );
    }

    #[test]
    fn dynamic_chunk_budget_expands_with_slack() {
        let mut s = sched(QoServeConfig::default());
        let now = SimTime::from_secs(100);
        // Tight slack: 30ms to next token.
        let tight: Vec<DecodeJob> = (0..32)
            .map(|i| decode(i, 1_000, now + SimDuration::from_millis(30)))
            .collect();
        // Loose slack: 500ms.
        let loose: Vec<DecodeJob> = (0..32)
            .map(|i| decode(i, 1_000, now + SimDuration::from_millis(500)))
            .collect();
        let b_tight = s.compute_budget(now, &tight);
        let b_loose = s.compute_budget(now, &loose);
        assert!(
            b_loose > b_tight,
            "loose slack {b_loose} must beat tight slack {b_tight}"
        );
        assert_eq!(
            s.compute_budget(now, &[]),
            ChunkLimits::default().max_chunk,
            "no decodes -> unconstrained budget"
        );
    }

    #[test]
    fn fixed_chunk_mode_mimics_sarathi() {
        let mut s = sched(QoServeConfig {
            dynamic_chunking: false,
            fixed_chunk: 256,
            ..Default::default()
        });
        let now = SimTime::from_secs(1);
        let decodes: Vec<DecodeJob> = (0..56)
            .map(|i| decode(i, 100, now + SimDuration::from_secs(10)))
            .collect();
        assert_eq!(s.compute_budget(now, &decodes), 200);
    }

    #[test]
    fn violated_job_is_relegated_and_deprioritized() {
        let mut s = sched(QoServeConfig::default());
        // Job 0's TTFT deadline (arrival 0 + 6s) has long passed at t=100.
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 500, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        // Job 1 is fresh and feasible.
        s.on_arrival(
            PrefillJob::new(spec(1, 99.0, 500, QosTier::paper_q1())),
            SimTime::from_secs(99),
        );
        let plan = s.plan_batch(SimTime::from_secs(100), &[], Constraints::unlimited());
        assert!(s.relegation_count() >= 1);
        assert_eq!(plan.prefill[0].id, RequestId(1), "live job must lead");
        // The relegated job is still serviced opportunistically (budget
        // remains after the live job).
        let relegated: Vec<_> = plan.prefill.iter().filter(|a| a.relegated).collect();
        assert!(
            relegated.iter().any(|a| a.id == RequestId(0)),
            "relegated job should be serviced opportunistically, plan: {plan:?}"
        );
    }

    #[test]
    fn relegation_can_be_disabled() {
        let mut s = sched(QoServeConfig {
            eager_relegation: false,
            ..Default::default()
        });
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 500, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let plan = s.plan_batch(SimTime::from_secs(100), &[], Constraints::unlimited());
        assert_eq!(s.relegation_count(), 0);
        assert!(!plan.prefill[0].relegated);
    }

    #[test]
    fn hopeless_job_is_relegated_before_its_deadline() {
        let mut s = sched(QoServeConfig::default());
        // 600k prompt tokens cannot prefill within a 6s TTFT at ~60us/token
        // (~36s needed): hopeless from the start.
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 600_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let _ = s.plan_batch(SimTime::from_millis(100), &[], Constraints::unlimited());
        assert_eq!(s.relegation_count(), 1);
    }

    #[test]
    fn low_priority_shed_first_under_infeasible_backlog() {
        // An interactive backlog deep enough that a low-priority job's
        // queue-ahead delay alone blows its 6s TTFT: the low-priority
        // half is shed, the important half is kept (it is not yet
        // hopeless on its own service time, which is all the paper's
        // check holds important jobs to).
        let mut s = sched(QoServeConfig::default());
        for i in 0..40 {
            let mut sp = spec(i, 0.0, 40_000, QosTier::paper_q1());
            sp.slo = Slo::of_tier(QosTier::paper_q1()).with_priority(if i % 2 == 0 {
                Priority::Low
            } else {
                Priority::Important
            });
            s.on_arrival(PrefillJob::new(sp), SimTime::ZERO);
        }
        assert!(s.backlog_overloaded());
        let plan = s.plan_batch(SimTime::from_millis(100), &[], Constraints::unlimited());
        assert!(s.relegation_count() > 0, "low-priority jobs should be shed");
        for a in plan.prefill.iter().filter(|a| !a.relegated) {
            assert_eq!(
                a.id.0 % 2,
                1,
                "only important jobs should be scheduled live, got {a:?}"
            );
        }
    }

    #[test]
    fn feasible_low_priority_jobs_survive_absorbable_surges() {
        // A non-interactive backlog whose drain time is far inside the
        // 600s TTLT: even though the 6s shed threshold is exceeded, no
        // low-priority job is relegated — the queue-ahead estimate shows
        // they will all make it.
        let mut s = sched(QoServeConfig::default());
        for i in 0..40 {
            let mut sp = spec(i, 0.0, 4_000, QosTier::paper_q2());
            sp.slo = Slo::of_tier(QosTier::paper_q2()).with_priority(if i % 2 == 0 {
                Priority::Low
            } else {
                Priority::Important
            });
            s.on_arrival(PrefillJob::new(sp), SimTime::ZERO);
        }
        assert!(s.backlog_overloaded());
        let _ = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        assert_eq!(
            s.relegation_count(),
            0,
            "feasible low-priority work must not be shed"
        );
    }

    #[test]
    fn load_adaptive_alpha_switches_and_rekeys() {
        let mut s = sched(QoServeConfig {
            alpha: AlphaPolicy::LoadAdaptive {
                low_ms: 1.0,
                high_ms: 8.0,
                backlog_tokens: 10_000,
            },
            // Disable relegation so backlog stays in place for the test.
            eager_relegation: false,
            ..Default::default()
        });
        assert_eq!(s.alpha_ms(), 1.0);
        for i in 0..10 {
            s.on_arrival(
                PrefillJob::new(spec(i, 0.0, 5_000, QosTier::paper_q3())),
                SimTime::ZERO,
            );
        }
        let _ = s.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        assert_eq!(s.alpha_ms(), 8.0, "backlog should raise alpha");
    }

    #[test]
    fn budget_zero_when_slack_exhausted() {
        let mut s = sched(QoServeConfig::default());
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 500, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let now = SimTime::from_secs(1);
        // Next token due immediately: no room for any prefill.
        let decodes = vec![decode(9, 2_000, now + SimDuration::from_micros(1))];
        let plan = s.plan_batch(now, &decodes, Constraints::unlimited());
        assert!(plan.is_empty());
        assert_eq!(plan.token_budget, 0);
    }

    #[test]
    fn kv_headroom_caps_plan() {
        let mut s = sched(QoServeConfig::default());
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 5_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let plan = s.plan_batch(
            SimTime::from_millis(10),
            &[],
            Constraints {
                kv_headroom_tokens: 64,
                allow_prefill: true,
                max_new_requests: usize::MAX,
            },
        );
        assert_eq!(plan.prefill_tokens(), 64);
    }

    #[test]
    fn selective_preemption_pauses_started_prefills() {
        // §3.4: a partially-prefilled request loses the next batch to a
        // higher-priority arrival (its KV stays resident; it resumes when
        // the urgent work clears) — no explicit preemption machinery, just
        // the priority order re-evaluated per iteration.
        let mut s = sched(QoServeConfig::default());
        // A large Q3 job starts prefilling alone.
        s.on_arrival(
            PrefillJob::new(spec(0, 0.0, 50_000, QosTier::paper_q3())),
            SimTime::ZERO,
        );
        let p1 = s.plan_batch(SimTime::from_millis(10), &[], Constraints::unlimited());
        assert_eq!(p1.prefill[0].id, RequestId(0));
        assert!(!p1.prefill[0].completes_prefill);

        // An interactive request lands: it owns the next batch entirely.
        s.on_arrival(
            PrefillJob::new(spec(1, 0.5, 2_000, QosTier::paper_q1())),
            SimTime::from_millis(500),
        );
        let p2 = s.plan_batch(SimTime::from_millis(600), &[], Constraints::unlimited());
        assert_eq!(p2.prefill[0].id, RequestId(1), "urgent arrival preempts");
        assert!(p2.prefill[0].completes_prefill);
        // Leftover budget resumes the preempted job within the same batch
        // (budget 2560 > 2000), picking up exactly where it stopped.
        let resumed = p2.prefill.iter().find(|a| a.id == RequestId(0)).unwrap();
        assert_eq!(resumed.context_before, p1.prefill[0].tokens);
    }

    #[test]
    fn adaptive_margin_stays_static_when_calm() {
        // Feeding observations that exactly match the raw prediction must
        // keep the adaptive pipeline's budgets identical to the static one.
        let mut adaptive = sched(QoServeConfig::adaptive());
        let mut fixed = sched(QoServeConfig::default());
        let base = adaptive.adaptive_margin().unwrap().config().base;
        let batch = BatchProfile::builder()
            .prefill_chunk(256, 0)
            .decodes(32, 32 * 1_000)
            .build();
        let exact = SimDuration::from_micros(
            adaptive.budget.predictor().predict_raw_us(&batch).round() as u64,
        );
        let now = SimTime::from_secs(5);
        for _ in 0..200 {
            adaptive.on_iteration(&batch, exact, now);
            fixed.on_iteration(&batch, exact, now);
        }
        assert_eq!(adaptive.adaptive_margin().unwrap().current(), base);
        let decodes: Vec<DecodeJob> = (0..32)
            .map(|i| decode(i, 1_000, now + SimDuration::from_millis(60)))
            .collect();
        assert_eq!(
            adaptive.compute_budget(now, &decodes),
            fixed.compute_budget(now, &decodes),
            "calm adaptive budgets must match static budgets"
        );
        assert_eq!(adaptive.estimator().recalibration_count(), 0);
    }

    #[test]
    fn adaptive_margin_widens_and_shrinks_budget_under_drift() {
        let mut s = sched(QoServeConfig::adaptive());
        let now = SimTime::from_secs(5);
        let decodes: Vec<DecodeJob> = (0..32)
            .map(|i| decode(i, 1_000, now + SimDuration::from_millis(60)))
            .collect();
        let calm_budget = s.compute_budget(now, &decodes);

        // A 1.4x slowdown window: observed latency far above prediction.
        let batch = BatchProfile::builder()
            .prefill_chunk(256, 0)
            .decodes(32, 32 * 1_000)
            .build();
        let predicted = s.budget.predictor().predict_raw_us(&batch);
        let observed = SimDuration::from_micros((predicted * 1.4).round() as u64);
        for _ in 0..64 {
            s.on_iteration(&batch, observed, now);
        }
        let am = s.adaptive_margin().unwrap();
        assert!(
            am.current() > am.config().base,
            "sustained drift must widen the margin, got {}",
            am.current()
        );
        assert!(
            s.estimator().recalibration_count() > 0,
            "drift must recalibrate the estimator rates"
        );
        let drift_budget = s.compute_budget(now, &decodes);
        assert!(
            drift_budget < calm_budget,
            "widened margin must shrink the chunk budget: {drift_budget} vs {calm_budget}"
        );
    }

    #[test]
    fn static_config_ignores_iterations() {
        let mut s = sched(QoServeConfig::default());
        let batch = BatchProfile::builder().prefill_chunk(256, 0).build();
        s.on_iteration(&batch, SimDuration::from_secs(10), SimTime::from_secs(1));
        assert!(s.adaptive_margin().is_none());
        assert_eq!(s.estimator().recalibration_count(), 0);
    }

    #[test]
    fn multi_job_packing_fills_budget() {
        let mut s = sched(QoServeConfig::default());
        for i in 0..5 {
            s.on_arrival(
                PrefillJob::new(spec(i, i as f64 * 0.01, 300, QosTier::paper_q1())),
                SimTime::ZERO,
            );
        }
        let plan = s.plan_batch(SimTime::from_millis(100), &[], Constraints::unlimited());
        // Unconstrained budget = 2560 > 5 * 300: all five jobs packed.
        assert_eq!(plan.prefill.len(), 5);
        assert!(plan.prefill.iter().all(|a| a.completes_prefill));
        assert_eq!(s.pending_prefills(), 0);
    }
}
