//! Property-based tests of the performance substrate: the analytical
//! model's monotonicity (which the chunk-budget search depends on), and
//! budget-search safety under arbitrary operating points.

use proptest::prelude::*;

use qoserve_perf::{
    BatchProfile, ChunkBudget, ChunkLimits, HardwareConfig, LatencyModel, LatencyPredictor,
};
use qoserve_sim::SimDuration;

fn models() -> Vec<LatencyModel> {
    HardwareConfig::paper_configs()
        .iter()
        .map(LatencyModel::new)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency increases (weakly) when the chunk grows, all else equal —
    /// the monotonicity the binary search in `prefill_budget` relies on.
    #[test]
    fn latency_monotone_in_chunk(
        chunk in 16u32..4_000,
        extra in 1u32..2_000,
        ctx in 0u32..16_000,
        decodes in 0u32..128,
        mean_ctx in 16u64..4_000,
    ) {
        for m in models() {
            let small = BatchProfile::builder()
                .prefill_chunk(chunk, ctx)
                .decodes(decodes, decodes as u64 * mean_ctx)
                .build();
            let big = BatchProfile::builder()
                .prefill_chunk(chunk + extra, ctx)
                .decodes(decodes, decodes as u64 * mean_ctx)
                .build();
            prop_assert!(m.iteration_time_us(&big) >= m.iteration_time_us(&small));
        }
    }

    /// Latency increases (weakly) with decode-pool context.
    #[test]
    fn latency_monotone_in_decode_context(
        chunk in 0u32..2_000,
        decodes in 1u32..128,
        ctx_a in 16u64..2_000,
        ctx_extra in 1u64..4_000,
    ) {
        for m in models() {
            let light = BatchProfile::builder()
                .prefill_chunk(chunk, 0)
                .decodes(decodes, decodes as u64 * ctx_a)
                .build();
            let heavy = BatchProfile::builder()
                .prefill_chunk(chunk, 0)
                .decodes(decodes, decodes as u64 * (ctx_a + ctx_extra))
                .build();
            prop_assert!(m.iteration_time_us(&heavy) >= m.iteration_time_us(&light));
        }
    }

    /// Latency increases (weakly) with the chunk's context depth (the
    /// quadratic prefill-attention term — Medha's whole reason to exist).
    #[test]
    fn latency_monotone_in_prefill_depth(
        chunk in 16u32..2_000,
        depth in 0u32..50_000,
        extra in 1u32..50_000,
    ) {
        for m in models() {
            let shallow = BatchProfile::builder().prefill_chunk(chunk, depth).build();
            let deep = BatchProfile::builder()
                .prefill_chunk(chunk, depth + extra)
                .build();
            prop_assert!(m.iteration_time_us(&deep) >= m.iteration_time_us(&shallow));
        }
    }

    /// Whatever budget the search returns actually fits the slack (with
    /// the safety margin), and is maximal to within one step.
    #[test]
    fn budget_is_safe_and_maximal(
        decodes in 0u32..160,
        mean_ctx in 16u64..3_000,
        prefill_ctx in 0u32..20_000,
        slack_ms in 1u64..500,
    ) {
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let budget = ChunkBudget::new(LatencyPredictor::analytical(&hw), ChunkLimits::default());
        let slack = SimDuration::from_millis(slack_ms);
        let ctx_total = decodes as u64 * mean_ctx;
        let chunk = budget.prefill_budget(decodes, ctx_total, prefill_ctx, Some(slack));
        let limits = budget.limits();
        prop_assert!(chunk <= limits.max_chunk);
        prop_assert_eq!(chunk % limits.step, 0);
        if chunk > 0 {
            let fits = BatchProfile::builder()
                .prefill_chunk(chunk, prefill_ctx)
                .decodes(decodes, ctx_total)
                .build();
            prop_assert!(
                budget.predictor().predict(&fits) <= slack,
                "returned chunk {} does not fit slack {}",
                chunk,
                slack
            );
        }
        if chunk < limits.max_chunk {
            let bigger = BatchProfile::builder()
                .prefill_chunk(chunk + limits.step, prefill_ctx)
                .decodes(decodes, ctx_total)
                .build();
            prop_assert!(
                budget.predictor().predict(&bigger) > slack,
                "chunk {} was not maximal",
                chunk
            );
        }
    }

    /// The memoized budget search returns exactly what the uncached
    /// search returns, over random decode pools and slacks — including
    /// repeat probes that hit the cache.
    #[test]
    fn memoized_budget_equals_uncached(
        probes in prop::collection::vec(
            (0u32..200, 0u64..4_000, 0u32..30_000, 0u64..400_000),
            1..24,
        ),
    ) {
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let cached = ChunkBudget::new(LatencyPredictor::analytical(&hw), ChunkLimits::default());
        let uncached =
            ChunkBudget::uncached(LatencyPredictor::analytical(&hw), ChunkLimits::default());
        // One long probe sequence against a single cached instance, so
        // later probes exercise entries cached by earlier ones.
        for &(decodes, mean_ctx, prefill_ctx, slack_us) in &probes {
            let ctx_total = decodes as u64 * mean_ctx;
            let slack = Some(SimDuration::from_micros(slack_us));
            prop_assert_eq!(
                cached.prefill_budget(decodes, ctx_total, prefill_ctx, slack),
                uncached.prefill_budget(decodes, ctx_total, prefill_ctx, slack),
                "memo diverged at decodes={} mean_ctx={} prefill_ctx={} slack_us={}",
                decodes, mean_ctx, prefill_ctx, slack_us
            );
            // Immediate repeat: a pure cache-hit path must agree too.
            prop_assert_eq!(
                cached.prefill_budget(decodes, ctx_total, prefill_ctx, slack),
                uncached.prefill_budget(decodes, ctx_total, prefill_ctx, slack)
            );
        }
    }

    /// Throughput never exceeds the model's asymptotic ceiling and is
    /// positive for non-empty batches.
    #[test]
    fn throughput_is_sane(
        chunk in 1u32..4_096,
        decodes in 0u32..128,
        mean_ctx in 16u64..3_000,
    ) {
        for m in models() {
            let b = BatchProfile::builder()
                .prefill_chunk(chunk, 0)
                .decodes(decodes, decodes as u64 * mean_ctx)
                .build();
            let tput = m.throughput_tokens_per_sec(&b);
            prop_assert!(tput > 0.0);
            prop_assert!(tput < 100_000.0, "implausible {tput} tok/s");
        }
    }
}
