//! Figure 8: prefill goodput under PD disaggregation.
//!
//! Prefill nodes carry no decodes, so every scheme runs a large 8 K chunk
//! and dynamic chunking cannot help; QoServe's win comes from hybrid
//! prioritization plus eager relegation alone and is therefore smaller
//! than in the colocated case — exactly the paper's observation.

use qoserve::experiments::scaled_window;
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_engine::{disagg_chunk_limits, to_prefill_only_trace, DISAGG_CHUNK};
use qoserve_metrics::{max_supported_load, SloReport};

fn main() {
    banner("fig8", "Prefill goodput with PD disaggregation (Az-Conv)");

    let schemes: Vec<(String, SchedulerSpec)> = vec![
        (
            "Disagg-FCFS".into(),
            SchedulerSpec::Sarathi {
                policy: OrderPolicy::Fcfs,
                chunk: DISAGG_CHUNK,
            },
        ),
        (
            "Disagg-EDF".into(),
            SchedulerSpec::Sarathi {
                policy: OrderPolicy::Edf,
                chunk: DISAGG_CHUNK,
            },
        ),
        (
            "Disagg-QoServe".into(),
            SchedulerSpec::qoserve_with(QoServeConfig {
                chunk_limits: disagg_chunk_limits(),
                ..QoServeConfig::default()
            }),
        ),
    ];

    let window = scaled_window(2400);
    let dataset = Dataset::azure_conv();
    let mut table = Table::new(vec!["model", "Disagg-FCFS", "Disagg-EDF", "Disagg-QoServe"]);

    let mut rows = Vec::new();
    for hw in HardwareConfig::paper_configs() {
        let config = ClusterConfig::new(hw.clone());
        let seeds = SeedStream::new(8);
        let goodputs: Vec<f64> = schemes
            .iter()
            .map(|(_, spec)| {
                max_supported_load(0.5, 48.0, 0.2, |qps| {
                    let trace = to_prefill_only_trace(
                        &TraceBuilder::new(dataset.clone())
                            .arrivals(ArrivalProcess::poisson(qps))
                            .duration(window)
                            .paper_tier_mix()
                            .build(&seeds.child("trace")),
                    );
                    if trace.is_empty() {
                        return true;
                    }
                    let outcomes = run_shared(&trace, 1, spec, &config, &seeds);
                    SloReport::compute(&outcomes, trace.long_prompt_threshold())
                        .meets_goodput_bar(1.0)
                })
                .unwrap_or(0.0)
            })
            .collect();
        table.row(vec![
            hw.label(),
            format!("{:.1}", goodputs[0]),
            format!("{:.1}", goodputs[1]),
            format!("{:.1}", goodputs[2]),
        ]);
        rows.push(serde_json::json!({
            "model": hw.label(),
            "disagg_fcfs_qps": goodputs[0],
            "disagg_edf_qps": goodputs[1],
            "disagg_qoserve_qps": goodputs[2],
        }));
        eprintln!("  done: {}", hw.label());
    }
    print!("{table}");
    emit_results("fig8", &rows);
    println!();
    println!(
        "paper: QoServe has the best prefill goodput on every model, with smaller \
         margins than PD colocation (no decode slack to exploit)"
    );
}
