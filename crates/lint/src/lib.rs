//! `qoserve-lint` — workspace-specific static analysis.
//!
//! The QoServe reproduction's headline results are discrete-event
//! simulations whose validity rests on strict determinism (the test suite
//! pins `parallel == serial` bit-for-bit). This crate makes that contract
//! *machine-enforced* rather than conventional: a zero-dependency
//! structural analyzer that walks every `.rs` file in the workspace,
//! lexes it, parses an item tree ([`structure`]), builds a workspace
//! symbol table and call graph ([`symbols`]), and rejects
//!
//! * wall-clock / entropy sources in simulation crates
//!   (`nondeterministic-time`),
//! * iteration over `HashMap`/`HashSet` in simulation crates
//!   (`hash-iteration` — construction and point lookup stay legal;
//!   `BTreeMap` is the sanctioned ordered alternative),
//! * NaN-unsafe float comparisons anywhere (`float-ordering` — the job
//!   heaps order by floating-point priority, Eq. 4/5),
//! * panic sites in library code above a ratcheting per-file baseline
//!   (`panic-hygiene`, `lint-baseline.toml`),
//! * `println!`-family output in library code above its own ratcheting
//!   baseline (`unstructured-output`),
//! * allocation churn inside hot-path function bodies of determinism
//!   crates, above its own ratcheting baseline (`hot-path-alloc`),
//! * truncating / sign-changing integer `as` casts in time/token math
//!   crates, above its own ratcheting baseline (`lossy-cast` —
//!   `qoserve_sim::nums` is the sanctioned helper),
//! * nested same-statement lock acquisition and `.lock()` reachable from
//!   the hot-fn set over the call graph (`lock-discipline`),
//! * `TraceEvent` variants missing from an export surface
//!   (`trace-coverage` — cross-file exhaustiveness),
//! * persisted serde fields without `#[serde(default)]`
//!   (`serde-back-compat`, ratcheted),
//! * malformed or unused waiver comments (`bad-waiver`).
//!
//! Violations can be waived inline with a mandatory reason:
//! `// qoserve-lint: allow(<rule>) -- <reason>`. See [`rules`] for the
//! scoping table, `--explain <rule>` for the embedded rule book, and
//! DESIGN.md for the workflow.

pub mod baseline;
pub mod explain;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod structure;
pub mod symbols;
pub mod waiver;
pub mod walk;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::{Baseline, FAMILIES};
use rules::{analyze, scope_for, Diagnostic, FileAnalysis, FileScope, RULE_WAIVER};
use symbols::SymbolTable;

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// One applied waiver, for the run summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverNote {
    /// File the waiver sits in.
    pub path: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Column of the waiver comment.
    pub col: u32,
    /// Rules it covers.
    pub rules: Vec<String>,
    /// The stated reason.
    pub reason: String,
    /// Whether it actually suppressed anything this run.
    pub used: bool,
}

/// Outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations (every rule, baseline overflows included), sorted by
    /// `(path, line, col)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver encountered.
    pub waivers: Vec<WaiverNote>,
    /// `(rule, path, current, allowed)` for files whose ratcheted-rule
    /// count sits *below* their baseline ceiling — ratchet candidates.
    pub ratchet: Vec<(&'static str, String, u32, u32)>,
    /// Current per-file counts for the ratcheted rules (what
    /// `--fix-baseline` writes).
    pub counts: Baseline,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// One scanned file, held across the per-file and workspace passes.
struct Bundle {
    rel: String,
    scope: FileScope,
    analysis: FileAnalysis,
}

/// Lints every `.rs` file under `root` against `baseline`.
pub fn lint_tree(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    lint_tree_filtered(root, baseline, None)
}

/// Like [`lint_tree`], restricted to files whose workspace-relative path
/// starts with `only` (when given). Cross-file rules then see only that
/// slice of the workspace — `trace-coverage` goes inert when the enum is
/// out of view, which is exactly right for partial self-lints.
pub fn lint_tree_filtered(
    root: &Path,
    baseline: &Baseline,
    only: Option<&str>,
) -> std::io::Result<LintReport> {
    // Pass 1: per-file lexical + structural analysis.
    let mut bundles: Vec<Bundle> = Vec::new();
    for rel in walk::rust_files(root)? {
        if let Some(prefix) = only {
            if !rel.starts_with(prefix) {
                continue;
            }
        }
        let scope = scope_for(&rel);
        if !scope.any() {
            continue;
        }
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        let analysis = analyze(&rel, &src, scope);
        bundles.push(Bundle {
            rel,
            scope,
            analysis,
        });
    }

    let mut report = LintReport {
        files_scanned: bundles.len(),
        ..Default::default()
    };

    // Pass 2: workspace rules over the symbol table / call graph. Every
    // cross-file diagnostic is routed through the *owning file's* waivers
    // so one `allow(..)` line works identically for both tiers.
    let table = SymbolTable::build(
        bundles.iter().map(|b| &b.analysis.structure),
        |file, line| bundles[file].analysis.is_test_line(line),
    );
    let paths: Vec<String> = bundles.iter().map(|b| b.rel.clone()).collect();
    let mut ws_diags =
        rules::locks::check_hot_locks(&table, &paths, |file| bundles[file].scope.locks);
    let mentions: Vec<Vec<(String, String, u32)>> = bundles
        .iter()
        .map(|b| b.analysis.nontest_mentions())
        .collect();
    let surface_files: Vec<rules::coverage::SurfaceFile<'_>> = bundles
        .iter()
        .zip(mentions.iter())
        .map(|(b, m)| rules::coverage::SurfaceFile {
            path: &b.rel,
            mentions: m,
        })
        .collect();
    ws_diags.extend(rules::coverage::check(&table, &surface_files));
    for (file_idx, d) in ws_diags {
        let analysis = &bundles[file_idx].analysis;
        if analysis.is_test_line(d.line) {
            continue;
        }
        if let Some(w) = analysis.waivers.iter().find(|w| w.covers(d.rule, d.line)) {
            w.used.set(true);
            continue;
        }
        report.diagnostics.push(d);
    }

    // Pass 3: per-file diagnostics and the generic family ratchet.
    for b in &bundles {
        report.diagnostics.extend(b.analysis.diagnostics.clone());
        for fam in FAMILIES {
            let sites = b.analysis.ratchet_sites(fam.rule);
            let count = sites.len() as u32;
            let allowed = baseline.allowed_for(fam.rule, &b.rel);
            report.counts.record(fam.rule, &b.rel, count);
            if count > allowed {
                // Anchor the diagnostic at the first site so the report is
                // clickable even though the violation is file-level.
                let (line, col, ref what) = sites[0];
                report.diagnostics.push(Diagnostic {
                    path: b.rel.clone(),
                    line,
                    col,
                    rule: fam.rule,
                    message: format!(
                        "{count} {} (first: `{what}`), baseline allows {allowed}; {}",
                        fam.noun, fam.hint
                    ),
                });
            } else if count < allowed {
                report
                    .ratchet
                    .push((fam.rule, b.rel.clone(), count, allowed));
            }
        }
    }

    // Pass 4: unused-waiver detection — after every rule (both tiers) has
    // had its chance to mark waivers used. A waiver that suppressed
    // nothing is itself a diagnostic: stale exceptions hide the next real
    // violation at that site. Test-region waivers are tolerated (tests
    // are out of scope, so nothing can ever mark them used).
    for b in &bundles {
        for w in &b.analysis.waivers {
            let used = w.used.get();
            if !used && !b.analysis.is_test_line(w.line) {
                report.diagnostics.push(Diagnostic {
                    path: b.rel.clone(),
                    line: w.line,
                    col: w.col,
                    rule: RULE_WAIVER,
                    message: format!(
                        "unused waiver for `{}` — no violation of the waived rule(s) fires on \
                         the covered lines; delete it so drift cannot hide behind it",
                        w.rules.join(", ")
                    ),
                });
            }
            report.waivers.push(WaiverNote {
                path: b.rel.clone(),
                line: w.line,
                col: w.col,
                rules: w.rules.clone(),
                reason: w.reason.clone(),
                used,
            });
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Loads the baseline from `root`, tolerating a missing file (empty
/// baseline) but not a malformed one.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path: PathBuf = root.join(BASELINE_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Renders the human-readable run summary.
pub fn summary(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "qoserve-lint: {} file(s) scanned, {} violation(s)\n",
        report.files_scanned,
        report.diagnostics.len()
    ));
    if !report.waivers.is_empty() {
        out.push_str(&format!("  {} waiver(s):\n", report.waivers.len()));
        for w in &report.waivers {
            out.push_str(&format!(
                "    {}:{} allow({}) -- {}{}\n",
                w.path,
                w.line,
                w.rules.join(", "),
                w.reason,
                if w.used { "" } else { "  [unused]" }
            ));
        }
    }
    if !report.ratchet.is_empty() {
        out.push_str("  ratchet opportunities (run with --fix-baseline to lock in):\n");
        for (rule, path, now, allowed) in &report.ratchet {
            out.push_str(&format!(
                "    {path}: {now} {rule} site(s), baseline allows {allowed}\n"
            ));
        }
    }
    out
}
