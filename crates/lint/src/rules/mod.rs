//! The repo-specific rules and their per-crate scoping.
//!
//! Rules come in two tiers. The *lexical* tier matches patterns over the
//! token stream of [`crate::lexer`] (with a light name-tracking heuristic
//! for hash containers). The *structural* tier runs over the item tree,
//! workspace symbol table, and call graph built by [`crate::structure`]
//! and [`crate::symbols`] — that is what lets `lock-discipline` reason
//! about reachability across files and `trace-coverage` compare an enum
//! in one crate against match arms in another. Both tiers stay
//! dependency-free and type-blind; the waiver syntax exists for the rare
//! false positive.
//!
//! | rule                   | tier        | scope (non-test `src/` code) |
//! |------------------------|-------------|------------------------------|
//! | `nondeterministic-time`| lexical     | determinism crates (sim, sched, engine, workload, cluster, core, trace) |
//! | `hash-iteration`       | lexical     | determinism crates |
//! | `float-ordering`       | lexical     | every crate except the sanctioned helper `crates/sim/src/float.rs` |
//! | `panic-hygiene`        | lexical     | every crate, excluding `src/bin/` drivers; ratcheted |
//! | `unstructured-output`  | lexical     | library code only; ratcheted |
//! | `hot-path-alloc`       | lexical     | hot-path fn bodies in determinism-crate library code; ratcheted |
//! | `lossy-cast`           | lexical     | sim, engine, sched, cluster, perf library code, except the sanctioned helper `crates/sim/src/nums.rs`; ratcheted |
//! | `lock-discipline`      | structural  | determinism-crate library code (call-graph reachability from the hot-fn set) |
//! | `trace-coverage`       | structural  | the export surfaces, against the workspace `TraceEvent` enum |
//! | `serde-back-compat`    | structural  | metrics + trace + stats library code; ratcheted |
//! | `bad-waiver`           | —           | everywhere a waiver comment appears (malformed or unused) |
//!
//! Test code never participates: files under a `tests/`, `benches/`,
//! `examples/`, or `fixtures/` path component are skipped entirely, and
//! `#[cfg(test)]` / `#[test]` regions inside library files are excised.

pub(crate) mod casts;
pub(crate) mod coverage;
pub(crate) mod lexical;
pub(crate) mod locks;
pub(crate) mod serde_compat;

use crate::lexer::{lex, Tok, TokKind};
use crate::structure::{self, FileStructure};
use crate::waiver::{collect_waivers, Waiver};

/// Rule name: wall-clock / entropy sources in simulation crates.
pub const RULE_TIME: &str = "nondeterministic-time";
/// Rule name: iteration over `HashMap` / `HashSet`.
pub const RULE_HASH: &str = "hash-iteration";
/// Rule name: NaN-unsafe float comparisons.
pub const RULE_FLOAT: &str = "float-ordering";
/// Rule name: panics in library code, above the ratcheted baseline.
pub const RULE_PANIC: &str = "panic-hygiene";
/// Rule name: `println!`-family output in library code, above the
/// ratcheted baseline.
pub const RULE_OUTPUT: &str = "unstructured-output";
/// Rule name: allocation churn inside simulation hot paths, above the
/// ratcheted baseline.
pub const RULE_ALLOC: &str = "hot-path-alloc";
/// Rule name: truncating / sign-changing integer `as` casts, above the
/// ratcheted baseline.
pub const RULE_CAST: &str = "lossy-cast";
/// Rule name: nested lock acquisition / locks reachable from hot paths.
pub const RULE_LOCK: &str = "lock-discipline";
/// Rule name: `TraceEvent` variants missing from an export surface.
pub const RULE_COVERAGE: &str = "trace-coverage";
/// Rule name: serde fields without `#[serde(default)]` in persisted
/// schemas, above the ratcheted baseline.
pub const RULE_SERDE: &str = "serde-back-compat";
/// Rule name: malformed or unused waiver comment.
pub const RULE_WAIVER: &str = "bad-waiver";

/// Crates whose `src/` is bound by the determinism contract (the
/// simulation core; everything whose state feeds replayed results).
const DETERMINISM_CRATES: &[&str] = &[
    "sim", "sched", "engine", "workload", "cluster", "core", "trace",
];

/// Crates whose `src/` does time/token integer arithmetic bound by the
/// `lossy-cast` rule.
const CAST_CRATES: &[&str] = &["sim", "engine", "sched", "cluster", "perf"];

/// Crates whose serialized structs are persisted (JSONL results, trace
/// files, stats snapshots) and bound by `serde-back-compat`.
const SERDE_CRATES: &[&str] = &["metrics", "trace", "stats"];

/// The one file allowed to spell out raw float comparisons: the shared
/// `total_cmp` helper everything else is routed through.
const FLOAT_HELPER: &str = "crates/sim/src/float.rs";

/// The one file allowed to spell out raw integer casts: the checked /
/// saturating conversion helpers everything else is routed through.
const NUMS_HELPER: &str = "crates/sim/src/nums.rs";

/// Functions whose bodies are simulation hot paths: per-iteration and
/// per-event code where allocation churn (and locking) dominates
/// wall-clock time. Matched by name; `lock-discipline` additionally
/// follows the call graph out of these roots.
pub(crate) const HOT_FNS: &[&str] = &[
    "step",
    "on_iteration",
    "advance_replica",
    "run_faulty_inner",
    "pop",
    "pop_due",
];

/// One raw rule hit before waiver/baseline filtering: `(line, col, what)`.
pub type Site = (u32, u32, String);

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// `nondeterministic-time` + `hash-iteration`.
    pub determinism: bool,
    /// `float-ordering`.
    pub float: bool,
    /// `panic-hygiene`.
    pub panic: bool,
    /// `unstructured-output`.
    pub output: bool,
    /// `hot-path-alloc`.
    pub alloc: bool,
    /// `lossy-cast`.
    pub casts: bool,
    /// `serde-back-compat`.
    pub serde_compat: bool,
    /// `lock-discipline`.
    pub locks: bool,
}

impl FileScope {
    /// Nothing applies (test code, fixtures, non-crate files).
    pub const NONE: FileScope = FileScope {
        determinism: false,
        float: false,
        panic: false,
        output: false,
        alloc: false,
        casts: false,
        serde_compat: false,
        locks: false,
    };

    /// True when at least one rule family applies.
    pub fn any(&self) -> bool {
        self.determinism
            || self.float
            || self.panic
            || self.output
            || self.alloc
            || self.casts
            || self.serde_compat
            || self.locks
    }
}

/// Computes the rule scope of a workspace-relative path (must use `/`
/// separators; [`crate::walk`] normalizes).
pub fn scope_for(rel_path: &str) -> FileScope {
    let components: Vec<&str> = rel_path.split('/').collect();
    // Test, bench, example, and fixture code is exempt from everything.
    if components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples" | "fixtures"))
    {
        return FileScope::NONE;
    }
    // Only crate library/binary sources are in scope.
    let ["crates", crate_name, "src", rest @ ..] = components.as_slice() else {
        return FileScope::NONE;
    };
    if rest.is_empty() {
        return FileScope::NONE;
    }
    let is_bin_target = rest.first() == Some(&"bin") || rest == ["main.rs"];
    let determinism = DETERMINISM_CRATES.contains(crate_name);
    FileScope {
        determinism,
        float: rel_path != FLOAT_HELPER,
        panic: rest.first() != Some(&"bin"),
        output: !is_bin_target,
        alloc: determinism && rest.first() != Some(&"bin"),
        casts: CAST_CRATES.contains(crate_name) && !is_bin_target && rel_path != NUMS_HELPER,
        serde_compat: SERDE_CRATES.contains(crate_name) && !is_bin_target,
        locks: determinism && !is_bin_target,
    }
}

/// Result of analysing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations of the non-ratcheted per-file rules (time, hash, float,
    /// nested-lock) plus any malformed waivers. Waived hits are already
    /// removed.
    pub diagnostics: Vec<Diagnostic>,
    /// Unwaived panic sites in non-test code. The caller compares the
    /// count against the baseline.
    pub panic_sites: Vec<Site>,
    /// Unwaived `println!`-family sites in non-test library code,
    /// ratcheted like `panic_sites`.
    pub output_sites: Vec<Site>,
    /// Unwaived allocation sites inside hot-path fn bodies (see
    /// [`HOT_FNS`]) in non-test code, ratcheted like `panic_sites`.
    pub alloc_sites: Vec<Site>,
    /// Unwaived lossy integer cast sites in non-test code, ratcheted like
    /// `panic_sites`.
    pub cast_sites: Vec<Site>,
    /// Unwaived serde fields without `#[serde(default)]`, ratcheted like
    /// `panic_sites`.
    pub serde_sites: Vec<Site>,
    /// All well-formed waivers found in the file (used or not).
    pub waivers: Vec<Waiver>,
    /// The structural item tree (for the workspace passes).
    pub structure: FileStructure,
    /// `#[cfg(test)]` / `#[test]` line ranges.
    pub test_lines: Vec<(u32, u32)>,
}

impl FileAnalysis {
    /// True when `line` falls inside a test region of this file.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .iter()
            .any(|(lo, hi)| (*lo..=*hi).contains(&line))
    }

    /// The unwaived sites of one ratcheted family.
    pub fn ratchet_sites(&self, rule: &str) -> &[Site] {
        match rule {
            r if r == RULE_PANIC => &self.panic_sites,
            r if r == RULE_OUTPUT => &self.output_sites,
            r if r == RULE_ALLOC => &self.alloc_sites,
            r if r == RULE_CAST => &self.cast_sites,
            r if r == RULE_SERDE => &self.serde_sites,
            _ => &[],
        }
    }

    /// Non-test `(Enum, Variant, line)` path mentions, for coverage.
    pub fn nontest_mentions(&self) -> Vec<(String, String, u32)> {
        self.structure
            .path_mentions
            .iter()
            .filter(|(_, _, line)| !self.is_test_line(*line))
            .cloned()
            .collect()
    }
}

pub(crate) fn diag(path: &str, t: &Tok, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// Analyses one file under `scope`: lexical rules, structural parse, and
/// every per-file structural rule. Cross-file rules run later over the
/// collected [`FileAnalysis`] set (see [`crate::lint_tree`]).
pub fn analyze(rel_path: &str, src: &str, scope: FileScope) -> FileAnalysis {
    let toks = lex(src);
    let (waivers, bad_waivers) = collect_waivers(&toks);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::LineComment)
        .collect();
    let test_lines = lexical::test_regions(&code);
    let in_test = |line: u32| {
        test_lines
            .iter()
            .any(|(lo, hi)| (*lo..=*hi).contains(&line))
    };
    let structure = structure::parse(&code);

    let mut raw: Vec<Diagnostic> = Vec::new();
    if scope.determinism {
        lexical::check_time(rel_path, &code, &mut raw);
        lexical::check_hash_iteration(rel_path, &code, &mut raw);
    }
    if scope.float {
        lexical::check_float_ordering(rel_path, &code, &mut raw);
    }
    if scope.locks {
        for (line, col, message) in locks::nested_lock_sites(&structure) {
            raw.push(Diagnostic {
                path: rel_path.to_string(),
                line,
                col,
                rule: RULE_LOCK,
                message,
            });
        }
    }

    let mut analysis = FileAnalysis {
        waivers,
        ..Default::default()
    };

    for d in raw {
        if in_test(d.line) {
            continue;
        }
        if let Some(w) = analysis.waivers.iter().find(|w| w.covers(d.rule, d.line)) {
            w.used.set(true);
            continue;
        }
        analysis.diagnostics.push(d);
    }

    // Ratcheted families: collect unwaived non-test sites; the caller
    // compares counts against the per-file baseline ceilings.
    let families: [(bool, &'static str, Vec<Site>); 5] = [
        (scope.panic, RULE_PANIC, lexical::panic_sites(&code)),
        (scope.output, RULE_OUTPUT, lexical::output_sites(&code)),
        (scope.alloc, RULE_ALLOC, {
            let hot = lexical::hot_regions(&code);
            let in_hot = |line: u32| hot.iter().any(|(lo, hi)| (*lo..=*hi).contains(&line));
            lexical::alloc_sites(&code)
                .into_iter()
                .filter(|(line, _, _)| in_hot(*line))
                .collect()
        }),
        (scope.casts, RULE_CAST, casts::cast_sites(&code)),
        (
            scope.serde_compat,
            RULE_SERDE,
            serde_compat::serde_sites(&structure),
        ),
    ];
    for (enabled, rule, sites) in families {
        if !enabled {
            continue;
        }
        let kept: Vec<Site> = sites
            .into_iter()
            .filter(|(line, _, _)| {
                if in_test(*line) {
                    return false;
                }
                if let Some(w) = analysis.waivers.iter().find(|w| w.covers(rule, *line)) {
                    w.used.set(true);
                    return false;
                }
                true
            })
            .collect();
        match rule {
            r if r == RULE_PANIC => analysis.panic_sites = kept,
            r if r == RULE_OUTPUT => analysis.output_sites = kept,
            r if r == RULE_ALLOC => analysis.alloc_sites = kept,
            r if r == RULE_CAST => analysis.cast_sites = kept,
            _ => analysis.serde_sites = kept,
        }
    }

    for b in bad_waivers {
        analysis.diagnostics.push(Diagnostic {
            path: rel_path.to_string(),
            line: b.line,
            col: b.col,
            rule: RULE_WAIVER,
            message: b.message,
        });
    }

    analysis
        .diagnostics
        .sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    analysis.structure = structure;
    analysis.test_lines = test_lines;
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: FileScope = FileScope {
        determinism: true,
        float: true,
        panic: true,
        output: true,
        alloc: true,
        casts: true,
        serde_compat: true,
        locks: true,
    };

    fn rules_of(src: &str) -> Vec<&'static str> {
        analyze("crates/sim/src/x.rs", src, ALL)
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn scoping_table() {
        let s = scope_for("crates/sched/src/queue.rs");
        assert!(s.determinism && s.float && s.panic && s.output && s.alloc);
        assert!(s.casts && s.locks && !s.serde_compat);
        let s = scope_for("crates/metrics/src/histogram.rs");
        assert!(!s.determinism && s.float && s.panic && s.output);
        assert!(!s.alloc, "hot-path-alloc only binds determinism crates");
        assert!(s.serde_compat && !s.casts && !s.locks);
        let s = scope_for("crates/trace/src/tracer.rs");
        assert!(s.determinism, "the trace layer feeds replayed results");
        assert!(s.serde_compat && s.locks && !s.casts);
        let s = scope_for("crates/perf/src/predictor.rs");
        assert!(s.casts && !s.determinism, "perf does token math");
        let s = scope_for("crates/sim/src/float.rs");
        assert!(s.determinism && !s.float && s.panic, "sanctioned helper");
        let s = scope_for("crates/sim/src/nums.rs");
        assert!(
            !s.casts && s.determinism && s.float,
            "nums.rs is the sanctioned cast helper"
        );
        let s = scope_for("crates/stats/src/snapshot.rs");
        assert!(
            s.serde_compat && !s.determinism && !s.casts,
            "stats persists snapshots but folds outside the sim kernels"
        );
        let s = scope_for("crates/bench/src/bin/fig9.rs");
        assert!(
            !s.determinism && s.float && !s.panic && !s.output && !s.alloc,
            "drivers may panic and print"
        );
        let s = scope_for("crates/engine/src/bin/probe.rs");
        assert!(
            !s.alloc && !s.casts && !s.locks,
            "bin targets are exempt even in determinism/cast crates"
        );
        let s = scope_for("crates/lint/src/main.rs");
        assert!(s.panic && !s.output, "main.rs is a bin target for output");
        assert!(!scope_for("crates/sched/tests/props.rs").any());
        assert!(!scope_for("tests/tests/invariants.rs").any());
        assert!(!scope_for("examples/quickstart.rs").any());
        assert!(!scope_for("crates/lint/tests/fixtures/ws/crates/sim/src/bad.rs").any());
    }

    #[test]
    fn time_rule_fires() {
        assert_eq!(rules_of("let t = Instant::now();"), vec![RULE_TIME]);
        assert_eq!(rules_of("let t = SystemTime::now();"), vec![RULE_TIME]);
        assert_eq!(rules_of("let mut r = rand::thread_rng();"), vec![RULE_TIME]);
        assert_eq!(
            rules_of("let r = ChaCha8Rng::from_entropy();"),
            vec![RULE_TIME]
        );
        // `Instant` in other positions (e.g. a type name) is fine.
        assert!(rules_of("fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn hash_iteration_method_forms() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S { fn f(&self) { \
                   for v in self.m.values() { } } }";
        let a = analyze("crates/sched/src/x.rs", src, ALL);
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].rule, RULE_HASH);
        assert!(a.diagnostics[0].message.contains(".values()"));

        for m in ["iter", "keys", "drain", "into_values", "iter_mut"] {
            let src = format!("let mut m = HashMap::new();\nlet x: Vec<_> = m.{m}().collect();");
            assert_eq!(rules_of(&src), vec![RULE_HASH], "method {m}");
        }
    }

    #[test]
    fn hash_iteration_bare_for_forms() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nfor (k, v) in &m { }";
        assert_eq!(rules_of(src), vec![RULE_HASH]);
        let src = "struct S { seen: HashSet<u64> }\nfn f(s: S) { for x in s.seen { } }";
        // `s.seen` — the tracked ident is followed by nothing iterable-
        // looking but is the for target; caught via the bare-ident path.
        assert_eq!(rules_of(src), vec![RULE_HASH]);
    }

    #[test]
    fn hash_construction_and_lookup_are_legal() {
        let src = "let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   m.insert(1, 2);\nlet v = m.get(&1);\nlet n = m.len();\n\
                   m.entry(3).or_default();\nm.remove(&1);";
        assert!(rules_of(src).is_empty());
        // BTreeMap iteration is the sanctioned alternative.
        assert!(rules_of("let m = BTreeMap::new(); for x in m.values() { }").is_empty());
        // `impl Trait for Type` must not confuse the for-loop scan.
        assert!(rules_of("impl Iterator for Thing { }").is_empty());
    }

    #[test]
    fn float_rule_fires() {
        assert_eq!(
            rules_of("let o = a.partial_cmp(&b).unwrap();"),
            vec![RULE_FLOAT]
        );
        assert_eq!(
            rules_of("let o = a.partial_cmp(&b).expect(\"cmp\");"),
            vec![RULE_FLOAT]
        );
        // sort_by with a partial_cmp comparator: one diagnostic, at the
        // sort, even when the inner call also unwraps.
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap());"),
            vec![RULE_FLOAT]
        );
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));"),
            vec![RULE_FLOAT]
        );
        // total_cmp is always fine; bare partial_cmp without unwrap too.
        assert!(rules_of("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(rules_of("if a.partial_cmp(&b) == Some(Ordering::Less) { }").is_empty());
    }

    #[test]
    fn panic_sites_and_exclusions() {
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); todo!(); }",
            ALL,
        );
        assert_eq!(a.panic_sites.len(), 4);
        // Named lookalikes don't count.
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(f); assert!(x); debug_assert_eq!(a, b); }",
            ALL,
        );
        assert!(a.panic_sites.is_empty());
    }

    #[test]
    fn output_sites_and_exclusions() {
        let a = analyze(
            "crates/metrics/src/x.rs",
            "fn f() { println!(\"a\"); eprintln!(\"b\"); print!(\"c\"); eprint!(\"d\"); \
             let v = dbg!(1); }",
            ALL,
        );
        assert_eq!(a.output_sites.len(), 5);
        assert_eq!(a.output_sites[0].2, "println!");
        // Structured writes and lookalike idents don't count.
        let a = analyze(
            "crates/metrics/src/x.rs",
            "fn f(w: &mut String) { writeln!(w, \"x\"); write!(w, \"y\"); self.println(); }",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        // Test regions are excised, like every other rule.
        let a = analyze(
            "crates/metrics/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        // A waiver with a reason suppresses and is marked used.
        let a = analyze(
            "crates/bench/src/x.rs",
            "// qoserve-lint: allow(unstructured-output) -- console banner is the product\n\
             fn banner() { println!(\"hi\"); }\n",
            ALL,
        );
        assert!(a.output_sites.is_empty());
        assert!(a.waivers[0].used.get());
    }

    #[test]
    fn hot_path_alloc_fires_only_inside_hot_fns() {
        let src = "impl Engine {\n\
                   fn label(&self) -> String { self.name.clone() }\n\
                   pub fn step(&mut self) -> bool {\n\
                   let b = Box::new(Job::default());\n\
                   let s = self.id.to_string();\n\
                   let js = self.jobs.clone();\n\
                   let o = buf.to_owned();\n\
                   let v = slice.to_vec();\n\
                   true\n\
                   }\n\
                   }\n";
        let a = analyze("crates/engine/src/x.rs", src, ALL);
        assert_eq!(a.alloc_sites.len(), 5, "{:?}", a.alloc_sites);
        assert_eq!(a.alloc_sites[0].2, "Box::new(..)");
        assert_eq!(a.alloc_sites[1].2, ".to_string()");
        // The same allocations outside a hot fn are legal.
        let a = analyze(
            "crates/engine/src/x.rs",
            "fn setup() { let b = Box::new(1); let s = x.to_string(); let c = y.clone(); }",
            ALL,
        );
        assert!(a.alloc_sites.is_empty());
        // Lookalikes don't count: clone_from, Clone bound, non-call clone.
        let a = analyze(
            "crates/engine/src/x.rs",
            "fn on_iteration<T: Clone>(&mut self) { a.clone_from(&b); let f = Self::clone; }",
            ALL,
        );
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
    }

    #[test]
    fn hot_path_alloc_covers_all_hot_fns_and_respects_waivers() {
        for name in ["step", "on_iteration", "advance_replica", "pop", "pop_due"] {
            let src = format!("fn {name}(&mut self) -> u32 {{ self.v.clone() }}");
            let a = analyze("crates/sim/src/x.rs", &src, ALL);
            assert_eq!(a.alloc_sites.len(), 1, "fn {name}");
        }
        // A bodyless trait declaration must not swallow the rest of the
        // file into a hot region.
        let src = "trait S { fn step(&mut self) -> bool; }\n\
                   fn setup() { let c = x.clone(); }\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty(), "{:?}", a.alloc_sites);
        // Waivers suppress and are marked used, like every other rule.
        let src = "fn step(&mut self) {\n\
                   // qoserve-lint: allow(hot-path-alloc) -- cold error path\n\
                   let msg = err.to_string();\n\
                   }\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty());
        assert!(a.waivers[0].used.get());
        // Test regions are excised.
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { \
                   fn step(x: &X) -> X { x.clone() } }\n}\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.alloc_sites.is_empty());
    }

    #[test]
    fn lossy_cast_sites_are_collected() {
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f(t: u128, d: i64) -> u64 { (t as u64) + (d as u64) }",
            ALL,
        );
        assert_eq!(a.cast_sites.len(), 2, "{:?}", a.cast_sites);
        assert_eq!(a.cast_sites[0].2, "`as u64`");
        // Float targets and use-aliases are out of scope.
        let a = analyze(
            "crates/sim/src/x.rs",
            "use std::io::Result as IoResult;\nfn f(x: u64) -> f64 { x as f64 }",
            ALL,
        );
        assert!(a.cast_sites.is_empty(), "{:?}", a.cast_sites);
        // Waivers suppress; test regions are excised.
        let a = analyze(
            "crates/sim/src/x.rs",
            "fn f(t: u128) -> u64 {\n\
             // qoserve-lint: allow(lossy-cast) -- bounded by the horizon check above\n\
             t as u64\n\
             }\n\
             #[cfg(test)]\nmod tests { fn g(x: u64) -> u32 { x as u32 } }\n",
            ALL,
        );
        assert!(a.cast_sites.is_empty(), "{:?}", a.cast_sites);
        assert!(a.waivers[0].used.get());
    }

    #[test]
    fn serde_back_compat_sites_are_collected() {
        let src = "#[derive(Debug, Serialize, Deserialize)]\n\
                   pub struct Snap {\n\
                       pub p50_us: u64,\n\
                       #[serde(default)]\n\
                       pub p99_us: u64,\n\
                   }\n";
        let a = analyze("crates/metrics/src/x.rs", src, ALL);
        assert_eq!(a.serde_sites.len(), 1, "{:?}", a.serde_sites);
        assert_eq!(a.serde_sites[0].2, "`Snap::p50_us`");
        // Serialize-only structs and container-level defaults are fine.
        let src = "#[derive(Serialize)]\nstruct Out { x: u64 }\n\
                   #[derive(Serialize, Deserialize)]\n#[serde(default)]\n\
                   struct Tolerant { y: u64 }\n";
        let a = analyze("crates/metrics/src/x.rs", src, ALL);
        assert!(a.serde_sites.is_empty(), "{:?}", a.serde_sites);
    }

    #[test]
    fn nested_lock_fires_and_sequential_locks_do_not() {
        let src = "fn merge(&self) { let x = a.lock().unwrap().merge(b.lock().unwrap()); }";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        let locks: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE_LOCK)
            .collect();
        assert_eq!(locks.len(), 1, "{:?}", a.diagnostics);
        assert!(locks[0].message.contains("fn merge"));
        let src = "fn merge(&self) { let x = a.lock().unwrap(); let y = b.lock().unwrap(); }";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(
            !a.diagnostics.iter().any(|d| d.rule == RULE_LOCK),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn test_regions_are_excised() {
        let src = "fn lib() { }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); \
                   let m = HashMap::new(); for v in m.values() { } }\n}\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a.panic_sites.is_empty());
        // A top-level #[test] fn (no cfg module) is excised too.
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib(y: Option<u32>) -> u32 { y.unwrap() }";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert_eq!(a.panic_sites.len(), 1);
        assert_eq!(a.panic_sites[0].0, 3, "only the library-code unwrap counts");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// Instant::now() in a comment\n\
                   /* thread_rng() in a block /* nested unwrap() */ */\n\
                   let s = \"Instant::now() partial_cmp unwrap()\";\n\
                   let r = r#\"for x in m.values()\"#;\n\
                   let c = '\"';\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty());
        assert!(a.panic_sites.is_empty());
    }

    #[test]
    fn waivers_suppress_and_mark_used() {
        let src = "// qoserve-lint: allow(nondeterministic-time) -- wall-clock overhead probe\n\
                   let t = Instant::now();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.is_empty());
        assert_eq!(a.waivers.len(), 1);
        assert!(a.waivers[0].used.get());
        // Trailing same-line waiver works too.
        let src = "let v = x.unwrap(); // qoserve-lint: allow(panic-hygiene) -- infallible here\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.panic_sites.is_empty());
        // A waiver for the wrong rule does not suppress.
        let src = "// qoserve-lint: allow(panic-hygiene) -- wrong rule\nlet t = Instant::now();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert_eq!(a.diagnostics.len(), 1);
        assert!(!a.waivers[0].used.get());
    }

    #[test]
    fn bad_waiver_is_reported() {
        let src = "// qoserve-lint: allow(panic-hygiene)\nlet v = x.unwrap();\n";
        let a = analyze("crates/sim/src/x.rs", src, ALL);
        assert!(a.diagnostics.iter().any(|d| d.rule == RULE_WAIVER));
        // And the malformed waiver does NOT suppress the site.
        assert_eq!(a.panic_sites.len(), 1);
    }

    #[test]
    fn diagnostics_carry_exact_positions() {
        let a = analyze("crates/sim/src/x.rs", "\n  let t = Instant::now();", ALL);
        assert_eq!(a.diagnostics[0].line, 2);
        assert_eq!(a.diagnostics[0].col, 11);
        assert_eq!(
            a.diagnostics[0].to_string(),
            format!(
                "crates/sim/src/x.rs:2:11 nondeterministic-time {}",
                a.diagnostics[0].message
            )
        );
    }
}
