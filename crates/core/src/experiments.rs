//! Shared harness for the paper's experiments.
//!
//! Every `fig*`/`table*` binary in `qoserve-bench` drives its sweep
//! through these helpers so that scheme lists, trace construction, and
//! scaling all live in one place.
//!
//! ## Scaling
//!
//! The paper's runs take hours of traffic (4 h windows, 360 K requests).
//! The simulator replays them faithfully but the experiment binaries
//! default to a compressed window that preserves the trends (as the
//! artifact's `*_tiny.sh` scripts do). Set `QOSERVE_SCALE` to stretch it:
//! `QOSERVE_SCALE=1` is the fast default, `QOSERVE_SCALE=16` approaches
//! paper-scale windows.

use qoserve_cluster::{run_shared, ClusterConfig, SchedulerSpec};
use qoserve_metrics::{RequestOutcome, SloReport};
use qoserve_perf::HardwareConfig;
use qoserve_sim::{par_map, SeedStream, SimDuration};
use qoserve_workload::{ArrivalProcess, Dataset, TierMix, Trace, TraceBuilder};

/// Reads the experiment scale factor from `QOSERVE_SCALE` (default 1.0,
/// clamped to `[0.05, 64]`).
pub fn scale_factor() -> f64 {
    std::env::var("QOSERVE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 64.0)
}

/// A measurement window of `base_secs`, scaled by [`scale_factor`].
pub fn scaled_window(base_secs: u64) -> SimDuration {
    SimDuration::from_secs_f64(base_secs as f64 * scale_factor())
}

/// The four shared-cluster schemes of Figures 10–11, in plot order.
pub fn shared_cluster_schemes() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_srpf(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ]
}

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scheme label.
    pub scheme: String,
    /// Offered load in QPS.
    pub qps: f64,
    /// Violation/latency report of the run.
    pub report: SloReport,
    /// Raw outcomes (for custom breakdowns).
    pub outcomes: Vec<RequestOutcome>,
}

/// Runs every `(scheme, qps)` combination on a single shared replica over
/// the same per-QPS trace and returns the reports. Traces are rebuilt per
/// QPS (same seed) so schemes see identical workloads.
///
/// The grid cells are independent seeded simulations, so they run on
/// [`par_map`] worker threads (`QOSERVE_THREADS` controls how many).
/// Every cell reconstructs its randomness from `(seed, qps, scheme)`
/// alone, so the output is **bit-identical** to [`load_sweep_serial`] for
/// any thread count — a property `tests/` enforces.
pub fn load_sweep(
    dataset: &Dataset,
    hardware: &HardwareConfig,
    schemes: &[SchedulerSpec],
    qps_list: &[f64],
    window: SimDuration,
    mix: &TierMix,
    seed: u64,
) -> Vec<SweepPoint> {
    // Stage 1: build the per-QPS traces concurrently (each derives purely
    // from (dataset, qps, seed)).
    let traces: Vec<(f64, u32, Trace)> = par_map(qps_list.to_vec(), |_, qps| {
        let trace = TraceBuilder::new(dataset.clone())
            .arrivals(ArrivalProcess::poisson(qps))
            .duration(window)
            .tier_mix(mix.clone())
            .build(&SeedStream::new(seed));
        let threshold = trace.long_prompt_threshold();
        (qps, threshold, trace)
    });

    // Stage 2: simulate every grid cell concurrently, in the same
    // qps-major / scheme-minor order the serial loop produced.
    let grid: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|qi| (0..schemes.len()).map(move |si| (qi, si)))
        .collect();
    par_map(grid, |_, (qi, si)| {
        let (qps, threshold, trace) = &traces[qi];
        let scheme = &schemes[si];
        let outcomes = run_run(trace, scheme, hardware, seed);
        let report = SloReport::compute(&outcomes, *threshold);
        SweepPoint {
            scheme: scheme.label(),
            qps: *qps,
            report,
            outcomes,
        }
    })
}

/// The original single-threaded sweep loop, kept as the reference
/// implementation that [`load_sweep`] must match bit-for-bit.
pub fn load_sweep_serial(
    dataset: &Dataset,
    hardware: &HardwareConfig,
    schemes: &[SchedulerSpec],
    qps_list: &[f64],
    window: SimDuration,
    mix: &TierMix,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &qps in qps_list {
        let trace = TraceBuilder::new(dataset.clone())
            .arrivals(ArrivalProcess::poisson(qps))
            .duration(window)
            .tier_mix(mix.clone())
            .build(&SeedStream::new(seed));
        let threshold = trace.long_prompt_threshold();
        for scheme in schemes {
            let outcomes = run_run(&trace, scheme, hardware, seed);
            let report = SloReport::compute(&outcomes, threshold);
            points.push(SweepPoint {
                scheme: scheme.label(),
                qps,
                report,
                outcomes,
            });
        }
    }
    points
}

/// Runs one trace on one shared replica of `hardware` under `scheme`.
pub fn run_run(
    trace: &Trace,
    scheme: &SchedulerSpec,
    hardware: &HardwareConfig,
    seed: u64,
) -> Vec<RequestOutcome> {
    let config = ClusterConfig::new(hardware.clone());
    run_shared(trace, 1, scheme, &config, &SeedStream::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::TierId;

    #[test]
    fn scale_factor_defaults_to_one() {
        // The test environment does not set QOSERVE_SCALE.
        if std::env::var("QOSERVE_SCALE").is_err() {
            assert_eq!(scale_factor(), 1.0);
            assert_eq!(scaled_window(100), SimDuration::from_secs(100));
        }
    }

    #[test]
    fn scheme_list_matches_paper_plots() {
        let labels: Vec<String> = shared_cluster_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Sarathi-FCFS", "Sarathi-SRPF", "Sarathi-EDF", "QoServe"]
        );
    }

    #[test]
    fn sweep_produces_scheme_by_qps_grid() {
        let points = load_sweep(
            &Dataset::azure_conv(),
            &HardwareConfig::llama3_8b_a100_tp1(),
            &[SchedulerSpec::sarathi_fcfs(), SchedulerSpec::qoserve()],
            &[1.0, 2.0],
            SimDuration::from_secs(60),
            &TierMix::paper_equal(),
            7,
        );
        assert_eq!(points.len(), 4);
        // Same trace per QPS: totals agree across schemes.
        assert_eq!(points[0].report.total, points[1].report.total);
        // Per-tier data exists.
        assert!(points[0].report.by_tier.contains_key(&TierId::Q1));
    }
}
