//! Fixture: unstructured output in library code must fire, once per
//! file over the baseline, anchored at the first site.

pub fn report(total: u32) {
    println!("total = {total}");
    let doubled = dbg!(total * 2);
    eprintln!("doubled = {doubled}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output_is_exempt() {
        println!("fine in tests");
    }
}
