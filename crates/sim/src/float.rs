//! NaN-safe float ordering — the one sanctioned home for raw float
//! comparisons in the workspace.
//!
//! `f64` is only partially ordered: `partial_cmp` returns `None` for NaN
//! and `partial_cmp(..).unwrap()` panics, while `sort_by` with a
//! NaN-swallowing comparator (`unwrap_or(Equal)`) silently violates
//! strict weak ordering and can corrupt the sort. The scheduler's hybrid
//! priority key (Eq. 4/5) and the metrics quantile path both order
//! floats, so `qoserve-lint` bans `partial_cmp`-based comparators
//! everywhere (`float-ordering` rule) *except* this file, and everything
//! routes through these helpers instead. `f64::total_cmp` implements the
//! IEEE 754 `totalOrder` predicate: every NaN has a defined place
//! (positive NaN sorts after +∞), so the order is total, deterministic,
//! and panic-free.

use std::cmp::Ordering;

/// Total order on `f64` (IEEE 754 `totalOrder`): `-NaN < -∞ < … < -0.0 <
/// +0.0 < … < +∞ < +NaN`. Use as `xs.sort_by(|a, b| cmp_f64(*a, *b))` or
/// `iter.max_by(|a, b| cmp_f64(**a, **b))`.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sorts a float slice under [`cmp_f64`] — deterministic and panic-free
/// even when NaNs are present (they gather at the ends).
#[inline]
pub fn sort_f64(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// Converts a floating-point priority (µs, smaller = sooner) into the
/// integer heap key used by the job queues.
///
/// Finite values keep the saturating `as i64` semantics the schedulers
/// have always used; NaN — which `as` would silently map to 0, i.e. the
/// *front* of the queue — is pinned to `i64::MAX` so a poisoned priority
/// sorts last and can never starve well-formed jobs.
#[inline]
pub fn priority_micros(x: f64) -> i64 {
    if x.is_nan() {
        i64::MAX
    } else {
        // qoserve-lint: allow(lossy-cast) -- the saturating f64-to-i64 `as` semantics ARE the documented contract of this helper
        x as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_is_total_under_nan() {
        assert_eq!(cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(cmp_f64(2.0, 1.0), Ordering::Greater);
        assert_eq!(cmp_f64(1.0, 1.0), Ordering::Equal);
        assert_eq!(cmp_f64(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(cmp_f64(f64::INFINITY, f64::NAN), Ordering::Less);
        // Antisymmetry holds where partial_cmp would have returned None.
        assert_eq!(cmp_f64(f64::NAN, 0.0), Ordering::Greater);
        assert_eq!(cmp_f64(0.0, f64::NAN), Ordering::Less);
    }

    #[test]
    fn sort_gathers_nans_at_the_end() {
        let mut xs = vec![3.0, f64::NAN, -1.0, 2.0];
        sort_f64(&mut xs);
        assert_eq!(&xs[..3], &[-1.0, 2.0, 3.0]);
        assert!(xs[3].is_nan());
    }

    #[test]
    fn priority_micros_preserves_finite_semantics() {
        assert_eq!(priority_micros(1234.9), 1234);
        assert_eq!(priority_micros(-7.2), -7);
        assert_eq!(priority_micros(0.0), 0);
        // Saturating cast semantics are kept for overflow.
        assert_eq!(priority_micros(1e300), i64::MAX);
        assert_eq!(priority_micros(-1e300), i64::MIN);
    }

    #[test]
    fn nan_priority_sorts_last_not_first() {
        let keys = [
            priority_micros(f64::NAN),
            priority_micros(10.0),
            priority_micros(5.0),
        ];
        let mut sorted = keys;
        sorted.sort();
        assert_eq!(sorted, [5, 10, i64::MAX]);
        assert_eq!(keys[0], i64::MAX, "NaN must not map to the queue front");
    }
}
