//! CLI entry point: `cargo run -p qoserve-lint [-- FLAGS]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use qoserve_lint::rules::{Diagnostic, RULE_WAIVER};
use qoserve_lint::{
    baseline, explain, json, lint_tree_filtered, load_baseline, summary, BASELINE_FILE,
};

enum Format {
    Human,
    Json,
}

struct Args {
    root: PathBuf,
    fix_baseline: bool,
    quiet: bool,
    format: Format,
    only: Option<String>,
    forbid_waivers: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        fix_baseline: false,
        quiet: false,
        format: Format::Human,
        only: None,
        forbid_waivers: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--fix-baseline" => args.fix_baseline = true,
            "--quiet" | "-q" => args.quiet = true,
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--format requires `human` or `json`".to_string())?;
                args.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (human|json)")),
                };
            }
            "--only" => {
                args.only = Some(
                    it.next()
                        .ok_or_else(|| "--only requires a path prefix".to_string())?,
                );
            }
            "--forbid-waivers" => args.forbid_waivers = true,
            "--explain" => {
                args.explain = Some(
                    it.next()
                        .ok_or_else(|| "--explain requires a rule name".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qoserve-lint [--root PATH] [--only PREFIX] [--format human|json]\n\
                     \u{20}                   [--fix-baseline] [--forbid-waivers] [--quiet]\n\
                     \u{20}                   [--explain RULE]\n\
                     \n\
                     Structural analyzer for the QoServe workspace: determinism, float-\n\
                     ordering, panic-hygiene, unstructured-output, hot-path-alloc,\n\
                     lossy-cast, lock-discipline, trace-coverage, serde-back-compat,\n\
                     and bad-waiver. See DESIGN.md (\"Static analysis & the determinism\n\
                     contract\") for the rules, or `--explain <rule>` for one of them.\n\
                     \n\
                     --root PATH       workspace root to lint (default: .)\n\
                     --only PREFIX     lint only files whose path starts with PREFIX\n\
                     \u{20}                 (e.g. `crates/lint` for the CI self-lint)\n\
                     --format FORMAT   `human` (default) or `json` (one JSON object per\n\
                     \u{20}                 diagnostic, stable schema, summary suppressed)\n\
                     --fix-baseline    rewrite lint-baseline.toml with current ratcheted\n\
                     \u{20}                 counts (non-ratcheted rules must be clean)\n\
                     --forbid-waivers  treat every waiver as a violation (CI self-lint)\n\
                     --quiet           suppress the summary, print diagnostics only\n\
                     --explain RULE    print the rule book entry for RULE and exit"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &args.explain {
        return match explain::explain(rule) {
            Some(text) => {
                println!("{rule}\n\n{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "qoserve-lint: unknown rule `{rule}`; known rules: {}",
                    explain::rule_names().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let baseline = match load_baseline(&args.root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("qoserve-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = match lint_tree_filtered(&args.root, &baseline, args.only.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qoserve-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.forbid_waivers {
        // The CI self-lint over `crates/lint` runs with this flag: the
        // linter must hold its own rules without exceptions.
        for w in &report.waivers {
            report.diagnostics.push(Diagnostic {
                path: w.path.clone(),
                line: w.line,
                col: w.col,
                rule: RULE_WAIVER,
                message: format!(
                    "waiver for `{}` present, but waivers are forbidden in this scope \
                     (--forbid-waivers); fix the underlying violation instead",
                    w.rules.join(", ")
                ),
            });
        }
        report.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }

    match args.format {
        Format::Human => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if !args.quiet {
                print!("{}", summary(&report));
            }
        }
        Format::Json => print!("{}", json::render_json(&report)),
    }

    if args.fix_baseline {
        // Refuse to lock in a baseline while non-ratcheted rules are
        // violated — the ratchet must never paper over live diagnostics.
        let non_ratcheted = report
            .diagnostics
            .iter()
            .filter(|d| baseline::family(d.rule).is_none())
            .count();
        if non_ratcheted > 0 {
            eprintln!(
                "qoserve-lint: refusing --fix-baseline with {non_ratcheted} non-ratcheted \
                 violation(s) outstanding"
            );
            return ExitCode::from(1);
        }
        let path = args.root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, report.counts.render()) {
            eprintln!("qoserve-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let debts: Vec<String> = baseline::FAMILIES
            .iter()
            .map(|f| format!("{} {}", report.counts.counts_of(f.rule).len(), f.rule))
            .collect();
        println!(
            "qoserve-lint: wrote {} (files with debt: {})",
            path.display(),
            debts.join(", ")
        );
        return ExitCode::SUCCESS;
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
