//! End-to-end behaviour tests of the replica engine: request lifecycle,
//! latency bookkeeping, SLO semantics, determinism, and overload.

use qoserve_engine::{to_prefill_only_trace, ReplicaConfig, ReplicaEngine};
use qoserve_metrics::{RequestOutcome, SloReport};
use qoserve_perf::{HardwareConfig, LatencyPredictor};
use qoserve_sched::{OrderPolicy, QoServeConfig, QoServeScheduler, SarathiScheduler, Scheduler};
use qoserve_sim::{SeedStream, SimDuration, SimTime};
use qoserve_workload::{
    ArrivalProcess, Dataset, QosTier, RequestId, RequestSpec, Slo, Trace, TraceBuilder,
};

fn hw() -> HardwareConfig {
    HardwareConfig::llama3_8b_a100_tp1()
}

fn qoserve() -> Box<dyn Scheduler> {
    Box::new(QoServeScheduler::new(
        QoServeConfig::default(),
        LatencyPredictor::analytical(&hw()),
    ))
}

fn sarathi(policy: OrderPolicy) -> Box<dyn Scheduler> {
    Box::new(SarathiScheduler::new(policy, 256))
}

fn engine(sched: Box<dyn Scheduler>, seed: u64) -> ReplicaEngine {
    ReplicaEngine::new(ReplicaConfig::new(hw()), sched, &SeedStream::new(seed))
}

fn spec(id: u64, arrival_secs: f64, prompt: u32, decode: u32, tier: QosTier) -> RequestSpec {
    RequestSpec {
        id: RequestId(id),
        arrival: SimTime::from_secs_f64(arrival_secs),
        prompt_tokens: prompt,
        decode_tokens: decode,
        slo: Slo::of_tier(tier),
        app_id: 0,
    }
}

fn light_trace(seed: u64, qps: f64, n: usize) -> Trace {
    TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(qps))
        .num_requests(n)
        .paper_tier_mix()
        .build(&SeedStream::new(seed))
}

#[test]
fn single_request_lifecycle() {
    let mut e = engine(qoserve(), 1);
    e.submit(spec(0, 1.0, 1_000, 20, QosTier::paper_q1()));
    let outcomes = e.run();
    assert_eq!(outcomes.len(), 1);
    let o = &outcomes[0];
    assert!(o.finished());
    // First token strictly after arrival; completion after first token.
    assert!(o.first_token.unwrap() > o.spec.arrival);
    assert!(o.completion.unwrap() > o.first_token.unwrap());
    // 20 decode tokens at tens of ms each: TTLT - TTFT should be hundreds
    // of ms, not hours.
    let decode_span = o.ttlt().unwrap() - o.ttft().unwrap();
    assert!(decode_span > SimDuration::from_millis(100), "{decode_span}");
    assert!(decode_span < SimDuration::from_secs(10), "{decode_span}");
    // A lone request on an idle replica easily meets the 6s/50ms SLO.
    assert!(!o.violated(), "lateness {:?}", o.worst_token_lateness);
}

#[test]
fn single_token_request_completes_at_prefill() {
    let mut e = engine(qoserve(), 2);
    e.submit(spec(0, 0.5, 500, 1, QosTier::paper_q1()));
    let outcomes = e.run();
    let o = &outcomes[0];
    assert!(o.finished());
    assert_eq!(o.first_token, o.completion);
    assert_eq!(o.max_tbt, SimDuration::ZERO);
}

#[test]
fn ttft_scales_with_prompt_length() {
    let run = |prompt: u32| -> SimDuration {
        let mut e = engine(qoserve(), 3);
        e.submit(spec(0, 1.0, prompt, 5, QosTier::paper_q1()));
        e.run()[0].ttft().unwrap()
    };
    let short = run(256);
    let long = run(8_192);
    assert!(
        long > short * 3,
        "8k prompt TTFT ({long}) should dwarf 256 prompt TTFT ({short})"
    );
}

#[test]
fn token_deadlines_hold_under_light_load() {
    // A handful of concurrent interactive requests on one replica: every
    // Eq. 2 token deadline must hold. Note that QoServe deliberately lets
    // raw inter-token gaps exceed the 50ms TBT *target* when a request has
    // accumulated slack (§3.5's illustrative example) — violations are
    // judged against the absolute deadlines, so we bound the raw gap only
    // loosely by the largest possible dynamic-chunk iteration.
    let mut e = engine(qoserve(), 4);
    for i in 0..8 {
        e.submit(spec(
            i,
            1.0 + i as f64 * 0.2,
            2_000,
            100,
            QosTier::paper_q1(),
        ));
    }
    let outcomes = e.run();
    for o in &outcomes {
        assert!(o.finished());
        assert!(
            !o.violated(),
            "request {} violated: lateness {:?}",
            o.spec.id,
            o.worst_token_lateness
        );
        assert!(
            o.max_tbt <= SimDuration::from_millis(300),
            "request {} max TBT {} exceeds even a max-chunk iteration",
            o.spec.id,
            o.max_tbt
        );
    }
}

#[test]
fn all_requests_accounted_exactly_once() {
    let trace = light_trace(5, 3.0, 300);
    let mut e = engine(qoserve(), 5);
    let outcomes = e.run_trace(&trace);
    assert_eq!(outcomes.len(), trace.len());
    let mut ids: Vec<u64> = outcomes.iter().map(|o| o.spec.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len(), "duplicate or missing outcomes");
}

#[test]
fn identical_seeds_are_bit_reproducible() {
    let trace = light_trace(6, 2.5, 150);
    let run = |seed: u64| {
        let mut e = engine(qoserve(), seed);
        e.run_trace(&trace)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b);
    let c = run(8);
    assert_ne!(a, c, "different noise seeds should perturb something");
}

#[test]
fn light_load_meets_slos_for_all_schedulers() {
    let trace = light_trace(9, 1.5, 200);
    for sched in [
        qoserve(),
        sarathi(OrderPolicy::Fcfs),
        sarathi(OrderPolicy::Edf),
    ] {
        let name = sched.name().to_owned();
        let mut e = engine(sched, 9);
        let outcomes = e.run_trace(&trace);
        let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
        assert!(
            report.violation_pct() < 2.0,
            "{name} at light load violated {:.1}%",
            report.violation_pct()
        );
    }
}

#[test]
fn overload_hurts_fcfs_more_than_qoserve() {
    // An interactive-only workload well beyond single-replica capacity
    // (~4-5 QPS for Az-Conv Q1): FCFS head-of-line blocking should
    // violate far more than QoServe, and QoServe must shed hopeless work
    // through eager relegation.
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(10.0))
        .num_requests(400)
        .tier_mix(qoserve_workload::TierMix::single(QosTier::paper_q1()))
        .build(&SeedStream::new(10));
    let threshold = trace.long_prompt_threshold();

    let mut fcfs_engine = engine(sarathi(OrderPolicy::Fcfs), 10);
    let fcfs = SloReport::compute(&fcfs_engine.run_trace(&trace), threshold);

    let mut qs_engine = engine(qoserve(), 10);
    let qs = SloReport::compute(&qs_engine.run_trace(&trace), threshold);

    assert!(
        fcfs.violation_pct() > qs.violation_pct(),
        "FCFS {:.1}% should exceed QoServe {:.1}%",
        fcfs.violation_pct(),
        qs.violation_pct()
    );
    assert!(
        qs.relegated_fraction > 0.0,
        "overload should trigger relegation"
    );
}

#[test]
fn horizon_marks_unfinished_as_violations() {
    let mut config = ReplicaConfig::new(hw());
    config.horizon = Some(SimTime::from_secs(2));
    let mut e = ReplicaEngine::new(config, qoserve(), &SeedStream::new(11));
    // Arrives at t=1 with a prompt too large to finish by t=2.
    e.submit(spec(0, 1.0, 100_000, 50, QosTier::paper_q2()));
    // Arrives after the horizon entirely.
    e.submit(spec(1, 10.0, 100, 5, QosTier::paper_q1()));
    let outcomes = e.run();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.violated()));
    assert!(outcomes.iter().all(|o| !o.finished()));
}

#[test]
fn decode_pool_cap_is_respected() {
    let mut config = ReplicaConfig::new(hw());
    config.max_decode_batch = 4;
    config.record_batches = true;
    let mut e = ReplicaEngine::new(config, qoserve(), &SeedStream::new(12));
    for i in 0..16 {
        e.submit(spec(i, 0.1, 300, 400, QosTier::paper_q2()));
    }
    let outcomes = e.run();
    assert_eq!(outcomes.len(), 16);
    assert!(outcomes.iter().all(|o| o.finished()));
    assert!(e.batch_log().iter().all(|b| b.num_decodes <= 4));
}

#[test]
fn batch_log_records_dynamic_chunks() {
    // Run near capacity so decode slack actually binds sometimes: the
    // dynamic chunk must then vary across batches (Fig. 9's behaviour).
    let mut config = ReplicaConfig::new(hw());
    config.record_batches = true;
    let mut e = ReplicaEngine::new(config, qoserve(), &SeedStream::new(13));
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(5.0))
        .num_requests(250)
        .tier_mix(qoserve_workload::TierMix::single(QosTier::paper_q1()))
        .build(&SeedStream::new(13));
    let _ = e.run_trace(&trace);
    let log = e.batch_log();
    assert!(!log.is_empty());
    // Dynamic chunking must have produced at least two distinct budgets.
    let mut budgets: Vec<u32> = log.iter().map(|b| b.token_budget).collect();
    budgets.sort_unstable();
    budgets.dedup();
    assert!(budgets.len() >= 2, "budgets never varied: {budgets:?}");
    // Execution times are positive and ordered in time.
    for w in log.windows(2) {
        assert!(w[1].start >= w[0].start + w[0].exec);
    }
}

#[test]
fn prefill_only_trace_runs_without_decode_pool() {
    let trace = to_prefill_only_trace(&light_trace(14, 2.0, 100));
    let mut config = ReplicaConfig::new(hw());
    config.record_batches = true;
    let mut e = ReplicaEngine::new(config, qoserve(), &SeedStream::new(14));
    let outcomes = e.run_trace(&trace);
    assert!(outcomes.iter().all(RequestOutcome::finished));
    assert!(e.batch_log().iter().all(|b| b.num_decodes == 0));
    for o in &outcomes {
        assert_eq!(o.first_token, o.completion);
    }
}

#[test]
fn non_interactive_judged_on_ttlt_only() {
    // A Q3 request can have slow first tokens without violating, as long
    // as it completes within 30 minutes.
    let mut e = engine(sarathi(OrderPolicy::Fcfs), 15);
    // Head-of-line: a huge Q3 prompt in front of another Q3.
    e.submit(spec(0, 0.0, 30_000, 10, QosTier::paper_q3()));
    e.submit(spec(1, 0.1, 30_000, 10, QosTier::paper_q3()));
    let outcomes = e.run();
    for o in &outcomes {
        assert!(o.finished());
        assert!(!o.violated(), "TTLT {:?} should fit 1800s", o.ttlt());
        // TTFT is necessarily seconds-scale here — fine for Q3.
        assert!(o.ttft().unwrap() > SimDuration::from_millis(500));
    }
}

#[test]
fn sustainable_decode_batch_is_hardware_aware() {
    use qoserve_engine::sustainable_decode_batch;
    let gqa = sustainable_decode_batch(&HardwareConfig::llama3_8b_a100_tp1());
    let mha = sustainable_decode_batch(&HardwareConfig::qwen_7b_a100_tp2());
    assert!(
        gqa > mha,
        "GQA ({gqa}) must sustain a deeper decode pool than MHA ({mha})"
    );
    assert!((8..=256).contains(&gqa));
    assert!((8..=256).contains(&mha));
    // The default config picks it up.
    assert_eq!(
        ReplicaConfig::new(HardwareConfig::qwen_7b_a100_tp2()).max_decode_batch,
        mha
    );
}

#[test]
fn tiny_kv_cache_serialises_but_completes() {
    // A replica whose KV holds barely two requests at a time: admission
    // stalls, requests serialise, but everything still completes and is
    // accounted — the engine must never deadlock on KV pressure.
    let hw = hw();
    let mut config = ReplicaConfig::new(hw.clone());
    config.max_decode_batch = 64;
    let mut e = ReplicaEngine::new(config, qoserve(), &SeedStream::new(31));
    // Requests of ~5k prompt + 2k decode reserve against a 900k-token
    // cache would never stall; shrink the workload instead: give each
    // request a prompt near half the *effective* cache by using many
    // concurrent arrivals so admission pressure is real.
    for i in 0..40 {
        e.submit(spec(i, 0.2, 30_000, 500, QosTier::paper_q3()));
    }
    let outcomes = e.run();
    assert_eq!(outcomes.len(), 40);
    assert!(
        outcomes.iter().all(|o| o.finished()),
        "KV pressure must serialise, not starve"
    );
}

#[test]
fn engine_survives_pathological_single_token_flood() {
    // Thousands of 16-token prompts with 1-token decodes arriving at once:
    // exercises the max_new_requests cap and per-iteration packing.
    let mut e = engine(qoserve(), 32);
    for i in 0..2_000 {
        e.submit(spec(i, 0.5, 16, 1, QosTier::paper_q1()));
    }
    let outcomes = e.run();
    assert_eq!(outcomes.len(), 2_000);
    assert!(outcomes.iter().all(|o| o.finished()));
    // 2000 * 16 = 32k tokens at >10k tok/s: done within a few seconds of
    // simulated time.
    assert!(e.now() < SimTime::from_secs(60), "took {}", e.now());
}
