//! Plain-text table rendering for the experiment binaries.
//!
//! Every `fig*` / `table*` binary in `qoserve-bench` prints its results as
//! aligned text tables so paper-vs-measured comparison is a diff away.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use qoserve_metrics::Table;
///
/// let mut t = Table::new(vec!["scheme", "goodput"]);
/// t.row(vec!["Sarathi-FCFS".into(), "1.8".into()]);
/// t.row(vec!["QoServe".into(), "4.3".into()]);
/// let text = t.to_string();
/// assert!(text.contains("QoServe"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; extra
    /// cells are kept (the table widens).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(widths.len());
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                parts.push(format!("{cell:<w$}"));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };

        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places for table cells.
pub fn cell_f64(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal place for table cells.
pub fn cell_pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyyyy".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        let width = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == width));
        assert!(lines[0].contains("longer-header"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one".into()]);
        let s = t.to_string();
        assert!(s.contains("only-one"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn wide_rows_extend_table() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains("3"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn cell_formatters() {
        assert_eq!(cell_f64(1.2345), "1.23");
        assert_eq!(cell_pct(99.95), "100.0%");
        assert_eq!(cell_pct(0.0), "0.0%");
    }
}
