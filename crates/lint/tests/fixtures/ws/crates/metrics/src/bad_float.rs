//! Fixture: NaN-unsafe float comparisons (metrics is outside the
//! determinism scope, so only `float-ordering` applies here).

pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

pub fn wider(x: f64, y: f64) -> std::cmp::Ordering {
    x.partial_cmp(&y).unwrap()
}
