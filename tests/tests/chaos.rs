//! Chaos suite: the elastic control plane under composed fault and
//! membership churn, end to end.
//!
//! Four contracts are pinned here, mirroring DESIGN.md's control-plane
//! section:
//!
//! 1. **Zero-scale transparency**: an elastic plan with no scale events
//!    and no autoscaler is bit-identical to `run_shared_faulty` — the
//!    control plane must be invisible when it never moves, even with
//!    idle slot headroom above the initial fleet.
//! 2. **Conservation under chaos**: no fault-and-churn schedule may
//!    lose or double-complete a request; drain-migration stamps on
//!    outcomes reconcile exactly with the run's counters.
//! 3. **Drain isolation**: from the instant a replica starts draining
//!    until it re-warms into the serving set, no new work is routed to
//!    it — checked against the captured decision trace, not the
//!    implementation's own bookkeeping.
//! 4. **Determinism**: the same seed replays bit-identically, sharded
//!    execution matches lockstep, and `chaos_sweep` is invariant to
//!    thread count.

use proptest::prelude::*;

use qoserve::experiments::{chaos_sweep, chaos_sweep_serial, ChaosSweepSetup, FaultSweepSetup};
use qoserve::prelude::*;
use qoserve_sim::par_map_threads;
use qoserve_trace::{TraceEvent, Tracer};

fn cluster_config() -> ClusterConfig {
    ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
}

fn chaos_trace(seed: u64, qps: f64, n: usize) -> Trace {
    TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(qps))
        .num_requests(n)
        .tier_mix(TierMix::paper_equal())
        .low_priority_fraction(0.3)
        .build(&SeedStream::new(seed))
}

/// Lifecycle timing compressed so provisioning, warm-up, and drain all
/// land inside a sub-minute test window.
fn fast_lifecycle() -> LifecycleConfig {
    LifecycleConfig {
        provision_delay: SimDuration::from_secs(2),
        warmup: SimDuration::from_secs(3),
        drain_grace: SimDuration::from_secs(5),
    }
}

#[test]
fn zero_scale_elastic_is_bit_identical_to_run_shared_faulty() {
    let trace = chaos_trace(51, 6.0, 120);
    let config = cluster_config();
    let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
    for (spec, max_replicas) in [
        (SchedulerSpec::qoserve(), 3u32), // no headroom
        (SchedulerSpec::qoserve(), 6),    // idle slots above the fleet
        (SchedulerSpec::sarathi_fcfs(), 5),
    ] {
        let elastic = ElasticPlan {
            lifecycle: fast_lifecycle(),
            max_replicas,
            schedule: Vec::new(),
            autoscale: None,
        };
        let baseline = run_shared_faulty(&trace, 3, &spec, &config, &plan, &SeedStream::new(51))
            .expect("baseline routes");
        let elastic_run = run_shared_elastic(
            &trace,
            3,
            &spec,
            &config,
            &plan,
            &elastic,
            &SeedStream::new(51),
        )
        .expect("elastic routes");
        assert_eq!(
            elastic_run.outcomes,
            baseline.outcomes,
            "{} (ceiling {max_replicas}): a dormant control plane must be invisible",
            spec.label()
        );
        assert_eq!(elastic_run.stats, baseline.stats, "{}", spec.label());
        assert_eq!(elastic_run.stats.scale_ups, 0);
        assert_eq!(elastic_run.stats.scale_downs, 0);
        assert_eq!(elastic_run.stats.drain_migrated, 0);
    }
}

#[test]
fn drained_replicas_never_receive_new_work() {
    // Saturate three replicas so drains always have in-flight work to
    // migrate, and crash-heavy faults so re-dispatch traffic is dense
    // while drains are open.
    let trace = chaos_trace(52, 18.0, 400);
    let config = cluster_config();
    let mut faults = FaultConfig::moderate();
    faults.crash_rate_per_hour = 300.0;
    let plan = FaultPlan::with_faults(faults);
    let elastic = ElasticPlan {
        lifecycle: fast_lifecycle(),
        max_replicas: 5,
        schedule: vec![
            ScaleEvent {
                at: SimTime::from_secs(4),
                action: ScaleAction::Drain,
            },
            ScaleEvent {
                at: SimTime::from_secs(8),
                action: ScaleAction::Add,
            },
            ScaleEvent {
                at: SimTime::from_secs(14),
                action: ScaleAction::Drain,
            },
            ScaleEvent {
                at: SimTime::from_secs(20),
                action: ScaleAction::Add,
            },
        ],
        autoscale: None,
    };
    let tracer = Tracer::unbounded();
    let result = run_shared_elastic_traced(
        &trace,
        3,
        &SchedulerSpec::qoserve(),
        &config,
        &plan,
        &elastic,
        &SeedStream::new(52),
        &tracer,
    )
    .expect("traced elastic run routes");
    assert!(result.stats.scale_downs >= 2, "both drains must fire");

    let records = tracer.snapshot();
    let drain_starts: Vec<(u32, u64)> = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::DrainStarted { .. }))
        .map(|r| (r.replica, r.time_us))
        .collect();
    let drain_finishes = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::DrainFinished { .. }))
        .count();
    assert_eq!(
        drain_starts.len() as u64,
        result.stats.scale_downs,
        "every scale-down decision must open exactly one drain"
    );
    assert_eq!(
        drain_finishes,
        drain_starts.len(),
        "every drain must finalize by its deadline"
    );

    // From DrainStarted until the slot re-warms into the serving set
    // (or forever, if never reused), the replica is out of the
    // admission set: no re-dispatch may target it.
    for &(replica, start_us) in &drain_starts {
        let rejoin_us = records
            .iter()
            .filter(|r| {
                r.replica == replica
                    && r.time_us > start_us
                    && matches!(r.event, TraceEvent::WarmupComplete { .. })
            })
            .map(|r| r.time_us)
            .min()
            .unwrap_or(u64::MAX);
        let violations = records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::OrphanRedispatched { to_replica, .. } if to_replica == replica
                ) && r.time_us > start_us
                    && r.time_us < rejoin_us
            })
            .count();
        assert_eq!(
            violations, 0,
            "replica {replica} received re-dispatched work while drained \
             (drain at {start_us}us, rejoin at {rejoin_us}us)"
        );
    }
}

#[test]
fn drain_migration_stamps_reconcile_with_counters() {
    // Heavy load + tight drain grace: drains fire with decodes still
    // running, so migrated work is guaranteed.
    let trace = chaos_trace(53, 20.0, 300);
    let config = cluster_config();
    let elastic = ElasticPlan {
        lifecycle: LifecycleConfig {
            drain_grace: SimDuration::from_millis(200),
            ..fast_lifecycle()
        },
        max_replicas: 3,
        schedule: vec![
            ScaleEvent {
                at: SimTime::from_secs(3),
                action: ScaleAction::Drain,
            },
            ScaleEvent {
                at: SimTime::from_secs(6),
                action: ScaleAction::Add,
            },
        ],
        autoscale: None,
    };
    let result = run_shared_elastic(
        &trace,
        3,
        &SchedulerSpec::qoserve(),
        &config,
        &FaultPlan::none(),
        &elastic,
        &SeedStream::new(53),
    )
    .expect("elastic run routes");

    assert!(
        result.stats.drain_migrated > 0,
        "a drain under saturation must migrate in-flight work"
    );
    let stamped: u64 = result
        .outcomes
        .iter()
        .map(|o| o.drain_migrations as u64)
        .sum();
    assert_eq!(
        stamped, result.stats.drain_migrated,
        "per-request drain stamps must reconcile with the run counter"
    );
    for o in &result.outcomes {
        if o.drain_migrations > 0 {
            assert!(
                o.retries > 0,
                "a migrated request went through re-dispatch, so its \
                 attempt counter must have moved"
            );
        }
    }
}

#[test]
fn elastic_sharded_matches_lockstep_under_churn_and_crashes() {
    let trace = chaos_trace(54, 8.0, 150);
    let config = cluster_config();
    let mut faults = FaultConfig::moderate();
    faults.crash_rate_per_hour = 500.0;
    let plan = FaultPlan::with_faults(faults);
    let churn = ScaleChurnConfig {
        events_per_hour: 360.0,
        max_events: 16,
    };
    let schedule =
        generate_scale_schedule(&churn, SimDuration::from_secs(60), &SeedStream::new(54));
    assert!(!schedule.is_empty(), "churn schedule must draw events");
    let elastic = ElasticPlan {
        lifecycle: fast_lifecycle(),
        max_replicas: 5,
        schedule,
        autoscale: None,
    };
    let run = |sharded: bool| {
        let f = if sharded {
            run_shared_elastic
        } else {
            run_shared_elastic_lockstep
        };
        f(
            &trace,
            3,
            &SchedulerSpec::qoserve(),
            &config,
            &plan,
            &elastic,
            &SeedStream::new(54),
        )
        .expect("elastic run routes")
    };
    let sharded = run(true);
    let lockstep = run(false);
    assert!(
        sharded.stats.crashes > 0,
        "crash timeline must be exercised"
    );
    assert!(
        sharded.stats.scale_ups + sharded.stats.scale_downs > 0,
        "scale timeline must be exercised"
    );
    assert_eq!(
        sharded, lockstep,
        "execution mode must not leak into elastic results"
    );
}

#[test]
fn chaos_sweep_is_bit_identical_to_serial_and_thread_invariant() {
    let setup = ChaosSweepSetup {
        base: FaultSweepSetup {
            dataset: Dataset::azure_conv(),
            hardware: HardwareConfig::llama3_8b_a100_tp1(),
            replicas: 3,
            qps: 6.0,
            window: SimDuration::from_secs(45),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.25,
            plan: FaultPlan::with_faults(FaultConfig::moderate()),
            seed: 55,
        },
        churn: ScaleChurnConfig {
            events_per_hour: 240.0,
            max_events: 8,
        },
        lifecycle: fast_lifecycle(),
        max_replicas: 5,
    };
    let schemes = [SchedulerSpec::qoserve(), SchedulerSpec::sarathi_fcfs()];
    let intensities = [0.0, 1.5];

    let parallel = chaos_sweep(&setup, &schemes, &intensities);
    let serial = chaos_sweep_serial(&setup, &schemes, &intensities);
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.scheme, s.scheme);
        assert_eq!(p.intensity.to_bits(), s.intensity.to_bits());
        assert_eq!(p.report, s.report, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.stats, s.stats, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.replica_us, s.replica_us, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.outcomes, s.outcomes, "{} @ {}", p.scheme, p.intensity);
    }

    // Thread-count invariance: the same cells computed under explicit
    // 1-thread and 4-thread pools are bit-identical.
    let run_all = |threads: usize| {
        par_map_threads(threads, schemes.to_vec(), |_, spec| {
            let churn_schedule = generate_scale_schedule(
                &setup.churn,
                setup.base.window,
                &SeedStream::new(setup.base.seed),
            );
            let elastic = ElasticPlan {
                lifecycle: setup.lifecycle,
                max_replicas: setup.max_replicas,
                schedule: churn_schedule,
                autoscale: None,
            };
            let trace = chaos_trace(setup.base.seed, setup.base.qps, 100);
            run_shared_elastic(
                &trace,
                setup.base.replicas,
                &spec,
                &cluster_config(),
                &setup.base.plan,
                &elastic,
                &SeedStream::new(setup.base.seed),
            )
            .expect("elastic run routes")
        })
    };
    let one = run_all(1);
    let four = run_all(4);
    assert_eq!(one, four, "thread count must never change elastic runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under any composition of crashes, stragglers, and membership
    /// churn, every arrival ends in exactly one outcome, drain stamps
    /// reconcile with the counters, and the same seed replays
    /// bit-identically.
    #[test]
    fn no_request_lost_or_double_completed_under_chaos(
        seed in 0u64..1_000,
        n in 10usize..50,
        qps in 2.0f64..12.0,
        replicas in 1u32..4,
        headroom in 0u32..3,
        crash_rate in 0.0f64..400.0,
        churn_per_hour in 0.0f64..480.0,
    ) {
        let trace = chaos_trace(seed, qps, n);
        let config = cluster_config();
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = crash_rate;
        let plan = FaultPlan::with_faults(faults);
        let churn = ScaleChurnConfig {
            events_per_hour: churn_per_hour,
            max_events: 12,
        };
        let schedule = generate_scale_schedule(
            &churn,
            SimDuration::from_secs(90),
            &SeedStream::new(seed),
        );
        let elastic = ElasticPlan {
            lifecycle: fast_lifecycle(),
            max_replicas: replicas + headroom,
            schedule,
            autoscale: None,
        };
        let run = || {
            run_shared_elastic(
                &trace,
                replicas,
                &SchedulerSpec::qoserve(),
                &config,
                &plan,
                &elastic,
                &SeedStream::new(seed),
            )
            .expect("replicas > 0")
        };
        let result = run();

        // Exactly one outcome per arrival, ordered by id.
        prop_assert_eq!(result.outcomes.len(), trace.len());
        for (i, o) in result.outcomes.iter().enumerate() {
            prop_assert_eq!(o.spec.id.0, i as u64);
            prop_assert_eq!(o.finished(), o.disposition == Disposition::Completed);
            prop_assert!(o.retries <= plan.max_retries + 1);
        }

        // Drain stamps reconcile with the aggregate counter.
        let stamped: u64 = result
            .outcomes
            .iter()
            .map(|o| o.drain_migrations as u64)
            .sum();
        prop_assert_eq!(stamped, result.stats.drain_migrated);

        // Replica-time accounting never goes negative or vanishes while
        // a fleet served traffic.
        prop_assert!(result.replica_us > 0);
        prop_assert!(!result.fleet.is_empty());

        // Replay with the same seed is bit-identical.
        prop_assert_eq!(result, run());
    }
}
