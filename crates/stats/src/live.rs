//! Live wiring: the shared [`StatsHandle`], the tee sink that feeds the
//! aggregator from an existing capture sink, and the
//! [`ControlObserver`] implementation the cluster kernels drive.
//!
//! Typical setup:
//!
//! ```
//! use qoserve_sim::SimDuration;
//! use qoserve_stats::{StatsConfig, StatsHandle};
//! use qoserve_trace::{RingSink, Tracer};
//!
//! let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(30)));
//! // Records flow to both the aggregator and the bounded capture ring.
//! let tracer = Tracer::new(stats.tee(Box::new(RingSink::new(4096))));
//! // Hand `Some(&stats)` to an `_observed` kernel entry point; at each
//! // cadence boundary the kernel calls back and a delta is folded.
//! # let _ = tracer;
//! ```
//!
//! The handle is cheaply cloneable and thread-safe; all state lives
//! behind one mutex that is locked per record (the tee) and per
//! boundary (the observer). A poisoned mutex degrades to empty reads
//! rather than panicking, matching the tracer's discipline.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use qoserve_sim::SimTime;
use qoserve_trace::{ControlObserver, NullSink, TraceRecord, TraceSink};

use crate::aggregate::{StatsAggregator, StatsConfig};
use crate::snapshot::{SnapshotStream, StatsDelta, StatsSnapshot};

/// Shared, cloneable access to one [`StatsAggregator`].
#[derive(Clone)]
pub struct StatsHandle {
    inner: Arc<Mutex<StatsAggregator>>,
    cadence_us: u64,
}

impl std::fmt::Debug for StatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHandle")
            .field("cadence_us", &self.cadence_us)
            .finish()
    }
}

impl StatsHandle {
    /// A fresh aggregator behind a shared handle.
    pub fn new(config: StatsConfig) -> StatsHandle {
        let agg = StatsAggregator::new(config);
        let cadence_us = agg.cadence_us();
        StatsHandle {
            inner: Arc::new(Mutex::new(agg)),
            cadence_us,
        }
    }

    fn with<R>(&self, default: R, f: impl FnOnce(&mut StatsAggregator) -> R) -> R {
        match self.inner.lock() {
            Ok(mut agg) => f(&mut agg),
            Err(_) => default,
        }
    }

    /// A [`TraceSink`] that feeds this aggregator *and* forwards every
    /// record to `capture` (whose retained window and eviction counters
    /// remain the source of truth for `snapshot()`/`dropped()`). Use a
    /// [`NullSink`] capture for stats without retained records — the tee
    /// stays enabled either way.
    pub fn tee(&self, capture: Box<dyn TraceSink>) -> Box<dyn TraceSink> {
        Box::new(StatsSink {
            handle: self.clone(),
            capture,
            seen_dropped: 0,
        })
    }

    /// The cadence between snapshot boundaries, microseconds.
    pub fn cadence_us(&self) -> u64 {
        self.cadence_us
    }

    /// The cumulative full snapshot (as of the last folded boundary).
    pub fn full(&self) -> StatsSnapshot {
        self.with(StatsSnapshot::default(), |agg| agg.full())
    }

    /// Deltas with `seq >= since_seq`, in order.
    pub fn deltas_since(&self, since_seq: u64) -> Vec<StatsDelta> {
        self.with(Vec::new(), |agg| {
            agg.deltas()
                .iter()
                .filter(|d| d.seq >= since_seq)
                .cloned()
                .collect()
        })
    }

    /// The whole run as a snapshot stream (deltas plus, once finished,
    /// the final full snapshot).
    pub fn stream(&self) -> SnapshotStream {
        self.with(SnapshotStream::default(), |agg| SnapshotStream {
            cadence_us: agg.cadence_us(),
            deltas: agg.deltas().to_vec(),
            full: agg.finished().then(|| agg.full()),
        })
    }

    /// Whether the final fold has run.
    pub fn finished(&self) -> bool {
        self.with(false, |agg| agg.finished())
    }
}

impl ControlObserver for StatsHandle {
    fn next_boundary(&self, after: SimTime) -> Option<SimTime> {
        Some(self.with(SimTime::MAX, |agg| agg.next_boundary_after(after)))
    }

    fn boundary(&self, at: SimTime) {
        self.with((), |agg| agg.fold_boundary(at));
    }

    fn finish(&self, at: SimTime) {
        self.with((), |agg| agg.fold_final(at));
    }
}

/// The tee: buffers every record into the aggregator and forwards it to
/// the capture sink, attributing capture evictions to the record that
/// caused them (evictions happen on the causing record's own replica
/// ring, so the attribution is per-replica exact).
struct StatsSink {
    handle: StatsHandle,
    capture: Box<dyn TraceSink>,
    /// Capture-sink eviction total after the previous record.
    seen_dropped: u64,
}

impl TraceSink for StatsSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, record: TraceRecord) {
        self.capture.record(record);
        let total = self.capture.dropped();
        let caused = total.saturating_sub(self.seen_dropped);
        self.seen_dropped = total;
        self.handle.with((), |agg| agg.push(record, caused));
    }

    fn snapshot(&self) -> Vec<TraceRecord> {
        self.capture.snapshot()
    }

    fn dropped(&self) -> u64 {
        self.capture.dropped()
    }

    fn dropped_by_replica(&self) -> BTreeMap<u32, u64> {
        self.capture.dropped_by_replica()
    }
}

/// Convenience: a tee over a [`NullSink`] — stats only, no retained
/// records (the cheapest live-stats configuration).
pub fn stats_only_sink(handle: &StatsHandle) -> Box<dyn TraceSink> {
    handle.tee(Box::new(NullSink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimDuration;
    use qoserve_trace::{RingSink, TraceEvent, Tracer};

    fn first_token(time_us: u64, replica: u32, seq: u64) -> TraceRecord {
        TraceRecord {
            time_us,
            replica,
            seq,
            request: Some(1),
            event: TraceEvent::FirstToken,
        }
    }

    #[test]
    fn tee_feeds_both_aggregator_and_capture() {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(1)));
        let mut sink = stats.tee(Box::new(RingSink::new(8)));
        assert!(sink.enabled());
        sink.record(first_token(10, 0, 0));
        sink.record(first_token(20, 0, 1));
        assert_eq!(sink.snapshot().len(), 2);
        stats.boundary(SimTime::from_secs(1));
        assert_eq!(stats.full().frame.events, 2);
        assert_eq!(stats.full().frame.by_event.get("first_token"), Some(&2));
    }

    #[test]
    fn tee_attributes_capture_evictions() {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(1)));
        let mut sink = stats.tee(Box::new(RingSink::new(2)));
        for seq in 0..5 {
            sink.record(first_token(seq * 10, 7, seq));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.dropped_by_replica().get(&7), Some(&3));
        stats.finish(SimTime::from_secs(1));
        let full = stats.full();
        // All five records were folded (the aggregator sees everything;
        // only the capture window truncates)...
        assert_eq!(full.frame.events, 5);
        // ...and the truncation is visible in the snapshot.
        assert_eq!(full.frame.dropped, 3);
        assert_eq!(full.frame.dropped_by_replica.get(&7), Some(&3));
    }

    #[test]
    fn observer_boundaries_are_cadence_multiples() {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_micros(100)));
        let obs: &dyn ControlObserver = &stats;
        assert_eq!(
            obs.next_boundary(SimTime::ZERO),
            Some(SimTime::from_micros(100))
        );
        assert_eq!(
            obs.next_boundary(SimTime::from_micros(100)),
            Some(SimTime::from_micros(200))
        );
        assert_eq!(
            obs.next_boundary(SimTime::from_micros(150)),
            Some(SimTime::from_micros(200))
        );
    }

    #[test]
    fn stream_includes_final_full_only_after_finish() {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_micros(50)));
        let mut sink = stats_only_sink(&stats);
        sink.record(first_token(10, 0, 0));
        stats.boundary(SimTime::from_micros(50));
        assert_eq!(stats.stream().deltas.len(), 1);
        assert!(stats.stream().full.is_none());
        stats.finish(SimTime::from_micros(75));
        let stream = stats.stream();
        assert_eq!(stream.deltas.len(), 2);
        let full = stream.full.expect("finished");
        assert_eq!(full.frame.events, 1);
        assert_eq!(full, crate::snapshot::compose(&stream.deltas));
    }

    #[test]
    fn handle_works_through_a_tracer() {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(1)));
        let tracer = Tracer::new(stats.tee(Box::new(RingSink::new(16))));
        assert!(tracer.enabled());
        let r0 = tracer.for_replica(0);
        r0.set_now(SimTime::from_micros(42));
        r0.emit(Some(9), TraceEvent::FirstToken);
        stats.finish(SimTime::from_secs(1));
        assert_eq!(stats.full().frame.events, 1);
        assert_eq!(tracer.snapshot().len(), 1);
    }
}
