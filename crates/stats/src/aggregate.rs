//! The streaming aggregator: trace records in, delta snapshots out.
//!
//! # Determinism model
//!
//! [`StatsAggregator::push`] only *buffers* records — replica threads may
//! deliver them in any interleaving. All folding happens at cadence
//! boundaries driven through the
//! [`ControlObserver`](qoserve_trace::ControlObserver) contract: when the
//! kernel reports boundary `t`, every runnable replica clock has reached
//! `t`, so the buffered records with `time_us < t` are a pure function of
//! the simulation. [`fold_boundary`](StatsAggregator::fold_boundary)
//! drains exactly those, sorts them into the canonical
//! `(time_us, replica, seq)` order, and folds them left-to-right — the
//! result cannot depend on thread count or interleaving. Records the
//! orchestrator stamped *ahead* of the current boundary (a scheduled
//! re-dispatch) stay buffered and fold in a later window, which is
//! equally deterministic.
//!
//! The cumulative snapshot is maintained as the left-fold merge of the
//! published deltas (see [`crate::snapshot`]), which is what makes
//! `compose(deltas) == full` bit-exact.
//!
//! # Violation-cause attribution
//!
//! Completions that violated their SLO are attributed to the forensics
//! taxonomy (`qoserve-bench`'s `LatenessCause`) with the same precedence,
//! computed online from fold state: a fault on a replica the request
//! visited during its span wins; an elastic scale event (drain / scale
//! decision) comes next; a re-dispatched request with neither is still
//! fault-induced; otherwise a late first token is queueing delay and a
//! met TTFT is chunk-induced decode stretch. The one divergence from
//! post-hoc forensics: only events folded *before* the completion can be
//! consulted (same-stamp events sorting after it cannot), which is
//! deterministic by the canonical fold order.

use std::collections::BTreeMap;

use qoserve_metrics::{WindowedCounts, WindowedSamples};
use qoserve_sim::{SimDuration, SimTime};
use qoserve_trace::{
    canonical_sort, BreakerPhase, FaultKind, ScaleDirection, TraceEvent, TraceRecord,
};

use crate::snapshot::{StatsDelta, StatsFrame, StatsSnapshot, TierStats, SNAPSHOT_SCHEMA_VERSION};

/// Aggregation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsConfig {
    /// Sim-time between snapshot boundaries (clamped to ≥ 1 µs).
    pub cadence: SimDuration,
    /// Width of the rolling windows inside each frame (attainment,
    /// queue depth, chunk budget; clamped to ≥ 1 µs).
    pub window: SimDuration,
}

impl Default for StatsConfig {
    /// The paper's reporting scale: 60 s windows, one snapshot per
    /// window.
    fn default() -> Self {
        StatsConfig {
            cadence: SimDuration::from_secs(60),
            window: SimDuration::from_secs(60),
        }
    }
}

impl StatsConfig {
    /// A config with the same cadence and window length.
    pub fn every(cadence: SimDuration) -> StatsConfig {
        StatsConfig {
            cadence,
            window: cadence,
        }
    }
}

/// Per-request fold state (kept until completion or the final fold).
#[derive(Debug, Clone)]
struct InFlight {
    arrived_us: u64,
    deadline_us: u64,
    tier: u8,
    first_token_us: Option<u64>,
    redispatches: u32,
    rejected: bool,
    /// Replicas that emitted events for this request, in visit order.
    replicas: Vec<u32>,
}

/// The streaming aggregator. Feed it records (any order within a
/// boundary window) via [`push`](StatsAggregator::push); drive boundaries
/// via [`fold_boundary`](StatsAggregator::fold_boundary) /
/// [`fold_final`](StatsAggregator::fold_final); read snapshots back via
/// [`full`](StatsAggregator::full) / [`deltas`](StatsAggregator::deltas).
///
/// The live wrapper ([`StatsHandle`](crate::StatsHandle)) drives this
/// from the kernel's control instants; replay tooling can drive it
/// directly from a captured trace.
#[derive(Debug)]
pub struct StatsAggregator {
    cadence_us: u64,
    window_us: u64,
    /// Buffered `(record, drops_attributed)` pairs awaiting a boundary.
    pending: Vec<(TraceRecord, u64)>,
    inflight: BTreeMap<u64, InFlight>,
    /// Requests outstanding per replica (arrivals minus completions and
    /// rejections), sampled into `queue_depth`.
    outstanding: BTreeMap<u32, u64>,
    /// `FaultInjected` stamps per replica, ascending (fold order).
    fault_marks: BTreeMap<u32, Vec<u64>>,
    /// Elastic control-plane stamps (scale / drain) per replica.
    scale_marks: BTreeMap<u32, Vec<u64>>,
    /// Current lifecycle label per replica (changes are published).
    lifecycle: BTreeMap<u32, &'static str>,
    /// The cumulative frame: the left-fold merge of `deltas`.
    cumulative: StatsFrame,
    deltas: Vec<StatsDelta>,
    last_boundary_us: u64,
    finished: bool,
    end_us: u64,
}

impl StatsAggregator {
    /// An empty aggregator.
    pub fn new(config: StatsConfig) -> StatsAggregator {
        StatsAggregator {
            cadence_us: config.cadence.as_micros().max(1),
            window_us: config.window.as_micros().max(1),
            pending: Vec::new(),
            inflight: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            fault_marks: BTreeMap::new(),
            scale_marks: BTreeMap::new(),
            lifecycle: BTreeMap::new(),
            cumulative: StatsFrame::default(),
            deltas: Vec::new(),
            last_boundary_us: 0,
            finished: false,
            end_us: 0,
        }
    }

    /// The cadence between boundaries, microseconds.
    pub fn cadence_us(&self) -> u64 {
        self.cadence_us
    }

    /// The first cadence boundary strictly after `after`.
    pub fn next_boundary_after(&self, after: SimTime) -> SimTime {
        let n = (after.as_micros() / self.cadence_us + 1).saturating_mul(self.cadence_us);
        SimTime::from_micros(n)
    }

    /// Buffers one record, with the number of capture-sink evictions
    /// attributed to it (the tee reports eviction deltas per record; an
    /// unbounded sink always passes 0).
    pub fn push(&mut self, record: TraceRecord, drops_attributed: u64) {
        self.pending.push((record, drops_attributed));
    }

    /// Folds everything stamped strictly before `at` into one new delta
    /// and merges it into the cumulative frame. Call only when every
    /// runnable replica clock has reached `at` (the kernel's control
    /// instants guarantee this).
    pub fn fold_boundary(&mut self, at: SimTime) {
        self.fold(at.as_micros(), false);
    }

    /// Folds all remaining records (including orchestrator records
    /// stamped ahead of the last boundary), accounts still-unfinished
    /// requests, and seals the aggregator. `end` is the run's end time.
    pub fn fold_final(&mut self, end: SimTime) {
        if self.finished {
            return;
        }
        self.end_us = end.as_micros();
        self.fold(u64::MAX, true);
        self.finished = true;
    }

    /// Whether [`fold_final`](StatsAggregator::fold_final) has run.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The run's end time (0 until finished), microseconds.
    pub fn end_us(&self) -> u64 {
        self.end_us
    }

    /// The cumulative full snapshot.
    pub fn full(&self) -> StatsSnapshot {
        StatsSnapshot {
            version: SNAPSHOT_SCHEMA_VERSION,
            seq: self.deltas.len() as u64,
            upto_us: self.last_boundary_us,
            frame: self.cumulative.clone(),
        }
    }

    /// All published deltas, in `seq` order.
    pub fn deltas(&self) -> &[StatsDelta] {
        &self.deltas
    }

    fn fold(&mut self, upto_us: u64, is_final: bool) {
        let pending = std::mem::take(&mut self.pending);
        let (batch, rest): (Vec<_>, Vec<_>) =
            pending.into_iter().partition(|(r, _)| r.time_us < upto_us);
        self.pending = rest;
        let mut records: Vec<TraceRecord> = batch.iter().map(|(r, _)| *r).collect();
        canonical_sort(&mut records);
        let mut frame = StatsFrame::default();
        for r in &records {
            self.fold_record(r, &mut frame);
        }
        // Eviction notes attach to their causing record's stamp; summing
        // them per fold is deterministic because the batch content is.
        for (r, drops) in &batch {
            if *drops > 0 {
                frame.dropped += drops;
                *frame.dropped_by_replica.entry(r.replica).or_insert(0) += drops;
            }
        }
        if is_final {
            self.account_unfinished(&mut frame);
        }
        let upto = if is_final {
            self.end_us.max(self.last_boundary_us)
        } else {
            upto_us
        };
        let delta = StatsDelta {
            version: SNAPSHOT_SCHEMA_VERSION,
            seq: self.deltas.len() as u64,
            from_us: self.last_boundary_us,
            upto_us: upto,
            frame,
        };
        self.cumulative.merge(&delta.frame);
        self.last_boundary_us = upto;
        self.deltas.push(delta);
    }

    /// Requests never completed (and never rejected) when the run ended:
    /// counted per tier and attributed like forensics' unfinished
    /// violations, stamped into the window containing the run's end.
    fn account_unfinished(&mut self, frame: &mut StatsFrame) {
        let at_us = self.end_us;
        let unfinished: Vec<InFlight> = self
            .inflight
            .values()
            .filter(|f| !f.rejected)
            .cloned()
            .collect();
        for f in unfinished {
            frame
                .tiers
                .entry(f.tier)
                .or_insert_with(|| self.new_tier())
                .unfinished += 1;
            let label = self.cause_label(&f, u64::MAX);
            self.record_cause(frame, label, at_us);
        }
        self.inflight.clear();
    }

    fn new_tier(&self) -> TierStats {
        TierStats {
            attainment: WindowedCounts::new(self.window_us),
            ..TierStats::default()
        }
    }

    fn sample_queue(&mut self, frame: &mut StatsFrame, replica: u32, time_us: u64) {
        let depth = self.outstanding.get(&replica).copied().unwrap_or(0);
        self.replica_entry(frame, replica)
            .queue_depth
            .record(time_us, depth);
    }

    fn replica_entry<'a>(
        &self,
        frame: &'a mut StatsFrame,
        replica: u32,
    ) -> &'a mut crate::snapshot::ReplicaStats {
        let window_us = self.window_us;
        frame
            .replicas
            .entry(replica)
            .or_insert_with(|| crate::snapshot::ReplicaStats {
                batch_tokens: WindowedSamples::new(window_us),
                chunk_budget: WindowedSamples::new(window_us),
                queue_depth: WindowedSamples::new(window_us),
                ..crate::snapshot::ReplicaStats::default()
            })
    }

    fn set_lifecycle(&mut self, frame: &mut StatsFrame, replica: u32, state: &'static str) {
        if self.lifecycle.get(&replica).copied() != Some(state) {
            self.lifecycle.insert(replica, state);
            self.replica_entry(frame, replica).lifecycle = Some(state.to_owned());
        }
    }

    /// Mirrors `TraceForensics::cause_of` over fold state (precedence:
    /// fault overlap > scale overlap > re-dispatch > TTFT verdict).
    fn cause_label(&self, f: &InFlight, span_end_us: u64) -> &'static str {
        let overlaps = |marks: &BTreeMap<u32, Vec<u64>>| {
            f.replicas.iter().any(|r| {
                marks.get(r).is_some_and(|times| {
                    times.iter().any(|&t| t >= f.arrived_us && t <= span_end_us)
                })
            })
        };
        if overlaps(&self.fault_marks) {
            return "fault-induced";
        }
        if overlaps(&self.scale_marks) {
            return "scale-induced";
        }
        if f.redispatches > 0 {
            return "fault-induced";
        }
        match f.first_token_us {
            Some(ft) if ft <= f.deadline_us => "chunk-induced",
            _ => "queueing-delay",
        }
    }

    fn record_cause(&self, frame: &mut StatsFrame, label: &'static str, time_us: u64) {
        *frame.causes.entry(label.to_owned()).or_insert(0) += 1;
        frame
            .cause_windows
            .entry(label.to_owned())
            .or_insert_with(|| WindowedCounts::new(self.window_us))
            .record(time_us, false);
    }

    fn visit(&mut self, id: u64, replica: u32) {
        if let Some(f) = self.inflight.get_mut(&id) {
            if !f.replicas.contains(&replica) {
                f.replicas.push(replica);
            }
        }
    }

    /// Folds one record. The match is exhaustive by variant — no `_`
    /// arm — so a new `TraceEvent` fails compilation here, and the
    /// `trace-coverage` lint pins this file as a coverage surface.
    fn fold_record(&mut self, r: &TraceRecord, frame: &mut StatsFrame) {
        frame.events += 1;
        *frame.by_event.entry(r.event.name().to_owned()).or_insert(0) += 1;
        if let Some(id) = r.request {
            self.visit(id, r.replica);
        }
        match r.event {
            TraceEvent::RequestArrived {
                prompt_tokens: _,
                decode_tokens: _,
                tier,
                deadline_us,
            } => {
                if let Some(id) = r.request {
                    // Re-deliveries (orphan re-dispatch) keep the original
                    // arrival stamp: the SLO clock never resets.
                    self.inflight.entry(id).or_insert(InFlight {
                        arrived_us: r.time_us,
                        deadline_us,
                        tier,
                        first_token_us: None,
                        redispatches: 0,
                        rejected: false,
                        replicas: vec![r.replica],
                    });
                }
                frame
                    .tiers
                    .entry(tier)
                    .or_insert_with(|| self.new_tier())
                    .arrived += 1;
                self.replica_entry(frame, r.replica).arrived += 1;
                *self.outstanding.entry(r.replica).or_insert(0) += 1;
                self.sample_queue(frame, r.replica, r.time_us);
            }
            TraceEvent::FirstToken => {
                if let Some(id) = r.request {
                    if let Some(f) = self.inflight.get_mut(&id) {
                        if f.first_token_us.is_none() {
                            f.first_token_us = Some(r.time_us);
                            let ttft = r.time_us.saturating_sub(f.arrived_us);
                            frame
                                .tiers
                                .entry(f.tier)
                                .or_insert_with(|| TierStats {
                                    attainment: WindowedCounts::new(self.window_us),
                                    ..TierStats::default()
                                })
                                .ttft_us
                                .push(ttft as f64);
                        }
                    }
                }
            }
            TraceEvent::RequestCompleted {
                violated,
                worst_lateness_us,
                max_tbt_us,
                relegated: _,
            } => {
                let f = r.request.and_then(|id| self.inflight.remove(&id));
                let tier = f.as_ref().map(|f| f.tier).unwrap_or(0);
                let t = frame.tiers.entry(tier).or_insert_with(|| self.new_tier());
                t.completed += 1;
                t.violated += u64::from(violated);
                t.attainment.record(r.time_us, violated);
                t.lateness_us.push(worst_lateness_us as f64);
                t.tbt_us.record(max_tbt_us as f64);
                let rep = self.replica_entry(frame, r.replica);
                rep.completed += 1;
                rep.violated += u64::from(violated);
                if let Some(n) = self.outstanding.get_mut(&r.replica) {
                    *n = n.saturating_sub(1);
                }
                self.sample_queue(frame, r.replica, r.time_us);
                if violated {
                    if let Some(f) = &f {
                        let label = self.cause_label(f, r.time_us);
                        self.record_cause(frame, label, r.time_us);
                    }
                }
            }
            TraceEvent::ChunkBudgetChosen {
                budget,
                predicted_us: _,
                margin: _,
                cache_hit,
            } => {
                let rep = self.replica_entry(frame, r.replica);
                rep.chunk_budget.record(r.time_us, u64::from(budget));
                rep.chunk_cache_hits += u64::from(cache_hit);
            }
            TraceEvent::PriorityScored {
                edf_term: _,
                srpf_term: _,
                alpha: _,
            } => {
                self.replica_entry(frame, r.replica).priority_scored += 1;
            }
            TraceEvent::Relegated {
                from_tier,
                to_tier: _,
                reason: _,
            } => {
                frame
                    .tiers
                    .entry(from_tier)
                    .or_insert_with(|| self.new_tier())
                    .relegated += 1;
            }
            TraceEvent::AdmissionRejected {
                estimated_service_us: _,
                deadline_us: _,
            } => {
                let tier = if let Some(id) = r.request {
                    if let Some(f) = self.inflight.get_mut(&id) {
                        f.rejected = true;
                        f.tier
                    } else {
                        0
                    }
                } else {
                    0
                };
                frame
                    .tiers
                    .entry(tier)
                    .or_insert_with(|| self.new_tier())
                    .admission_rejected += 1;
                if let Some(n) = self.outstanding.get_mut(&r.replica) {
                    *n = n.saturating_sub(1);
                }
                self.sample_queue(frame, r.replica, r.time_us);
            }
            TraceEvent::BreakerTransition { from: _, to } => {
                let rep = self.replica_entry(frame, r.replica);
                rep.breaker_opens += u64::from(to == BreakerPhase::Open);
                rep.breaker = Some(
                    match to {
                        BreakerPhase::Closed => "closed",
                        BreakerPhase::Open => "open",
                        BreakerPhase::HalfProbe => "half_probe",
                    }
                    .to_owned(),
                );
            }
            TraceEvent::MarginAdjusted { margin, fallback } => {
                let rep = self.replica_entry(frame, r.replica);
                rep.margin_moves += 1;
                rep.last_margin = Some(margin);
                rep.fallback = Some(fallback);
            }
            TraceEvent::FaultInjected { kind, slowdown: _ } => {
                self.fault_marks
                    .entry(r.replica)
                    .or_default()
                    .push(r.time_us);
                frame.fleet.faults += 1;
                let rep = self.replica_entry(frame, r.replica);
                match kind {
                    FaultKind::Crash => {
                        rep.crashes += 1;
                        self.set_lifecycle(frame, r.replica, "crashed");
                    }
                    FaultKind::Slowdown => {
                        rep.slowdowns += 1;
                        self.set_lifecycle(frame, r.replica, "degraded");
                    }
                }
            }
            TraceEvent::OrphanRedispatched {
                from_replica,
                to_replica,
                attempt: _,
            } => {
                if let Some(f) = r.request.and_then(|id| self.inflight.get_mut(&id)) {
                    f.redispatches += 1;
                    for rep in [from_replica, to_replica] {
                        if !f.replicas.contains(&rep) {
                            f.replicas.push(rep);
                        }
                    }
                }
                frame.fleet.redispatches += 1;
                self.replica_entry(frame, from_replica).redispatched_away += 1;
                self.replica_entry(frame, to_replica).redispatched_onto += 1;
            }
            TraceEvent::ScaleDecision {
                direction,
                fleet_before: _,
                fleet_after,
            } => {
                self.scale_marks
                    .entry(r.replica)
                    .or_default()
                    .push(r.time_us);
                frame.fleet.size_points.push((r.time_us, fleet_after));
                frame.fleet.last_size = Some(fleet_after);
                match direction {
                    ScaleDirection::Up => {
                        frame.fleet.scale_ups += 1;
                        self.set_lifecycle(frame, r.replica, "provisioning");
                    }
                    ScaleDirection::Down => {
                        frame.fleet.scale_downs += 1;
                    }
                }
            }
            TraceEvent::DrainStarted { deadline_us: _ } => {
                self.scale_marks
                    .entry(r.replica)
                    .or_default()
                    .push(r.time_us);
                self.replica_entry(frame, r.replica).drains_started += 1;
                self.set_lifecycle(frame, r.replica, "draining");
            }
            TraceEvent::DrainFinished {
                migrated,
                deadline_hit,
            } => {
                self.scale_marks
                    .entry(r.replica)
                    .or_default()
                    .push(r.time_us);
                let rep = self.replica_entry(frame, r.replica);
                rep.drains_finished += 1;
                rep.drain_migrated += u64::from(migrated);
                rep.drain_deadline_hits += u64::from(deadline_hit);
                self.set_lifecycle(frame, r.replica, "retired");
            }
            TraceEvent::WarmupComplete { warmup_us } => {
                frame.fleet.warmups += 1;
                frame.fleet.warmup_us += warmup_us;
                self.replica_entry(frame, r.replica).warmup_us += warmup_us;
                self.set_lifecycle(frame, r.replica, "serving");
            }
            TraceEvent::IterationExecuted {
                batch_tokens,
                prefill_tokens: _,
                num_decodes: _,
                observed_us,
            } => {
                let rep = self.replica_entry(frame, r.replica);
                rep.iterations += 1;
                rep.busy_us += observed_us;
                rep.batch_tokens.record(r.time_us, u64::from(batch_tokens));
                frame.fleet.busy_us += observed_us;
                // A crashed/degraded replica executing again is serving;
                // draining replicas keep their label while they flush.
                match self.lifecycle.get(&r.replica).copied() {
                    None | Some("crashed") | Some("degraded") | Some("provisioning") => {
                        self.set_lifecycle(frame, r.replica, "serving");
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_trace::RelegationReason;

    fn rec(
        time_us: u64,
        replica: u32,
        seq: u64,
        request: Option<u64>,
        event: TraceEvent,
    ) -> TraceRecord {
        TraceRecord {
            time_us,
            replica,
            seq,
            request,
            event,
        }
    }

    fn arrival(
        time_us: u64,
        replica: u32,
        seq: u64,
        id: u64,
        tier: u8,
        deadline_us: u64,
    ) -> TraceRecord {
        rec(
            time_us,
            replica,
            seq,
            Some(id),
            TraceEvent::RequestArrived {
                prompt_tokens: 100,
                decode_tokens: 10,
                tier,
                deadline_us,
            },
        )
    }

    fn completion(time_us: u64, replica: u32, seq: u64, id: u64, violated: bool) -> TraceRecord {
        rec(
            time_us,
            replica,
            seq,
            Some(id),
            TraceEvent::RequestCompleted {
                violated,
                worst_lateness_us: if violated { 1_000 } else { -500 },
                max_tbt_us: 200_000,
                relegated: false,
            },
        )
    }

    fn agg() -> StatsAggregator {
        StatsAggregator::new(StatsConfig::every(SimDuration::from_secs(1)))
    }

    #[test]
    fn boundary_folds_only_records_before_it() {
        let mut a = agg();
        a.push(arrival(100, 0, 0, 1, 1, 5_000_000), 0);
        a.push(completion(1_500_000, 0, 1, 1, false), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.deltas().len(), 1);
        let d0 = &a.deltas()[0];
        assert_eq!(d0.frame.events, 1); // only the arrival
        assert_eq!(d0.frame.tiers[&1].arrived, 1);
        a.fold_boundary(SimTime::from_secs(2));
        let d1 = &a.deltas()[1];
        assert_eq!(d1.frame.tiers[&1].completed, 1);
        assert_eq!(a.full().frame.tiers[&1].arrived, 1);
        assert_eq!(a.full().frame.tiers[&1].completed, 1);
    }

    #[test]
    fn fold_is_interleaving_invariant() {
        let records = vec![
            arrival(10, 0, 0, 1, 0, 1_000),
            arrival(20, 1, 0, 2, 1, 2_000),
            rec(30, 0, 1, Some(1), TraceEvent::FirstToken),
            completion(40, 0, 2, 1, true),
            completion(50, 1, 1, 2, false),
        ];
        let mut fwd = agg();
        for r in &records {
            fwd.push(*r, 0);
        }
        fwd.fold_boundary(SimTime::from_secs(1));
        let mut rev = agg();
        for r in records.iter().rev() {
            rev.push(*r, 0);
        }
        rev.fold_boundary(SimTime::from_secs(1));
        assert_eq!(fwd.deltas(), rev.deltas());
        assert_eq!(fwd.full(), rev.full());
    }

    #[test]
    fn ttft_is_measured_from_first_arrival() {
        let mut a = agg();
        a.push(arrival(1_000, 0, 0, 7, 2, 500_000), 0);
        a.push(rec(31_000, 0, 1, Some(7), TraceEvent::FirstToken), 0);
        // A duplicate FirstToken (re-dispatch re-prefill) is not
        // double-counted.
        a.push(rec(60_000, 0, 2, Some(7), TraceEvent::FirstToken), 0);
        a.fold_boundary(SimTime::from_secs(1));
        let t = &a.full().frame.tiers[&2];
        assert_eq!(t.ttft_us.count(), 1);
        assert_eq!(t.ttft_us.mean(), 30_000.0);
    }

    #[test]
    fn cause_attribution_mirrors_forensics_precedence() {
        // Queueing delay: first token after the deadline.
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(rec(20_000, 0, 1, Some(1), TraceEvent::FirstToken), 0);
        a.push(completion(30_000, 0, 2, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("queueing-delay"), Some(&1));

        // Chunk-induced: TTFT met but still violated.
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(rec(5_000, 0, 1, Some(1), TraceEvent::FirstToken), 0);
        a.push(completion(30_000, 0, 2, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("chunk-induced"), Some(&1));

        // Fault overlap on the request's replica wins over both.
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(rec(5_000, 0, 1, Some(1), TraceEvent::FirstToken), 0);
        a.push(
            rec(
                8_000,
                0,
                2,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Slowdown,
                    slowdown: 3.0,
                },
            ),
            0,
        );
        a.push(completion(30_000, 0, 3, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("fault-induced"), Some(&1));
        // A fault on an unrelated replica does not contaminate.
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(
            rec(
                8_000,
                9,
                0,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Crash,
                    slowdown: 1.0,
                },
            ),
            0,
        );
        a.push(rec(5_000, 0, 1, Some(1), TraceEvent::FirstToken), 0);
        a.push(completion(30_000, 0, 2, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("chunk-induced"), Some(&1));

        // Scale overlap (drain on the replica) beats the TTFT verdict.
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(
            rec(
                6_000,
                0,
                1,
                None,
                TraceEvent::DrainStarted {
                    deadline_us: 1_000_000,
                },
            ),
            0,
        );
        a.push(completion(30_000, 0, 2, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("scale-induced"), Some(&1));

        // A re-dispatched request with no overlapping marks is
        // fault-induced (orphaned before reaching the crash site).
        let mut a = agg();
        a.push(arrival(0, 0, 0, 1, 0, 10_000), 0);
        a.push(
            rec(
                7_000,
                1,
                0,
                Some(1),
                TraceEvent::OrphanRedispatched {
                    from_replica: 0,
                    to_replica: 1,
                    attempt: 1,
                },
            ),
            0,
        );
        a.push(completion(30_000, 1, 1, 1, true), 0);
        a.fold_boundary(SimTime::from_secs(1));
        assert_eq!(a.full().frame.causes.get("fault-induced"), Some(&1));
    }

    #[test]
    fn lifecycle_strip_follows_elastic_events() {
        let mut a = agg();
        a.push(
            rec(
                10,
                3,
                0,
                None,
                TraceEvent::ScaleDecision {
                    direction: ScaleDirection::Up,
                    fleet_before: 2,
                    fleet_after: 3,
                },
            ),
            0,
        );
        a.push(
            rec(20, 3, 1, None, TraceEvent::WarmupComplete { warmup_us: 10 }),
            0,
        );
        a.push(
            rec(30, 3, 2, None, TraceEvent::DrainStarted { deadline_us: 90 }),
            0,
        );
        a.push(
            rec(
                40,
                3,
                3,
                None,
                TraceEvent::IterationExecuted {
                    batch_tokens: 64,
                    prefill_tokens: 0,
                    num_decodes: 4,
                    observed_us: 5,
                },
            ),
            0,
        );
        a.push(
            rec(
                90,
                3,
                4,
                None,
                TraceEvent::DrainFinished {
                    migrated: 2,
                    deadline_hit: false,
                },
            ),
            0,
        );
        a.fold_boundary(SimTime::from_secs(1));
        let full = a.full();
        let rep = &full.frame.replicas[&3];
        // Draining survives the iteration at t=40; retirement wins last.
        assert_eq!(rep.lifecycle.as_deref(), Some("retired"));
        assert_eq!(rep.drains_started, 1);
        assert_eq!(rep.drain_migrated, 2);
        assert_eq!(full.frame.fleet.scale_ups, 1);
        assert_eq!(full.frame.fleet.last_size, Some(3));
        assert_eq!(full.frame.fleet.size_points, vec![(10, 3)]);
    }

    #[test]
    fn unfinished_requests_are_accounted_in_the_final_fold() {
        let mut a = agg();
        a.push(arrival(100, 0, 0, 1, 1, 2_000), 0);
        a.push(arrival(200, 0, 1, 2, 1, 3_000), 0);
        // Request 2 is rejected at admission: no unfinished entry.
        a.push(
            rec(
                250,
                0,
                2,
                Some(2),
                TraceEvent::AdmissionRejected {
                    estimated_service_us: 9_000,
                    deadline_us: 3_000,
                },
            ),
            0,
        );
        a.fold_final(SimTime::from_micros(500));
        let full = a.full();
        let t = &full.frame.tiers[&1];
        assert_eq!(t.unfinished, 1);
        assert_eq!(t.admission_rejected, 1);
        assert_eq!(full.frame.causes.get("queueing-delay"), Some(&1));
        assert_eq!(full.upto_us, 500);
        assert!(a.finished());
    }

    #[test]
    fn queue_depth_tracks_outstanding_per_replica() {
        let mut a = agg();
        a.push(arrival(10, 0, 0, 1, 0, 1_000_000), 0);
        a.push(arrival(20, 0, 1, 2, 0, 1_000_000), 0);
        a.push(completion(30, 0, 2, 1, false), 0);
        a.fold_boundary(SimTime::from_secs(1));
        let rep = &a.full().frame.replicas[&0];
        // Samples: 1 (after first arrival), 2 (after second), 1 (after
        // completion).
        assert_eq!(rep.queue_depth.count(), 3);
        assert_eq!(rep.queue_depth.max(), Some(2));
    }

    #[test]
    fn dropped_notes_are_attributed_per_replica() {
        let mut a = agg();
        a.push(arrival(10, 4, 0, 1, 0, 1_000), 2);
        a.push(arrival(20, 5, 0, 2, 0, 1_000), 0);
        a.fold_boundary(SimTime::from_secs(1));
        let full = a.full();
        assert_eq!(full.frame.dropped, 2);
        assert_eq!(full.frame.dropped_by_replica.get(&4), Some(&2));
        assert!(!full.frame.dropped_by_replica.contains_key(&5));
    }
}
